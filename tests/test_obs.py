"""The observability layer: metrics registry, span tracer, and the
instrumentation wired through the verification stack.

The last test is the integration check the layer exists for: one traced
session covering a solver proof and an adversarial end-to-end run must
produce a parseable Chrome-trace JSONL whose span tree includes both
solver and CPU spans.
"""


import pytest

from repro import obs
from repro.obs.metrics import Counter, Gauge, Histogram, Registry
from repro.obs.tracing import NULL_SPAN, Tracer, load_jsonl


@pytest.fixture(autouse=True)
def _clean_obs():
    """Every test starts and ends with observability off and zeroed."""
    obs.disable()
    obs.REGISTRY.reset()
    yield
    obs.disable()
    obs.REGISTRY.reset()


# ---------------------------------------------------------------- metrics


def test_counter_math():
    c = Counter("c")
    c.inc()
    c.inc(41)
    assert c.value == 42
    c.reset()
    assert c.value == 0


def test_gauge_set_and_add():
    g = Gauge("g")
    g.set(10)
    g.add(-3)
    assert g.value == 7


def test_histogram_moments_and_buckets():
    h = Histogram("h")
    for v in (1, 2, 4, 4, 100):
        h.record(v)
    assert h.count == 5
    assert h.total == 111
    assert h.min == 1
    assert h.max == 100
    assert h.mean == pytest.approx(111 / 5)
    # power-of-two buckets: 1 -> 2^0, 2 -> 2^1, 4 -> 2^2 (twice), 100 -> 2^7
    assert h.buckets[0] == 1
    assert h.buckets[1] == 1
    assert h.buckets[2] == 2
    assert h.buckets[7] == 1


def test_registry_get_or_create_and_type_conflict():
    r = Registry()
    assert r.counter("x") is r.counter("x")
    with pytest.raises(TypeError):
        r.gauge("x")


def test_registry_reset_in_place():
    r = Registry()
    c = r.counter("n")
    c.inc(5)
    r.reset()
    assert c.value == 0
    assert r.counter("n") is c  # references never go stale


def test_registry_snapshot_and_render():
    r = Registry()
    r.counter("sat.decisions").inc(3)
    r.counter("vcgen.obligations_proved")  # zero: skipped by render
    snap = r.snapshot(prefix="sat.")
    assert snap == {"sat.decisions": 3}
    rendered = r.render()
    assert "sat.decisions" in rendered
    assert "vcgen.obligations_proved" not in rendered


# ---------------------------------------------------------------- tracing


def test_span_nesting_reconstructs_tree():
    t = Tracer()
    with t.span("outer", cat="a"):
        with t.span("inner", cat="a"):
            pass
        with t.span("sibling", cat="b"):
            pass
    assert t.depth == 0
    roots = t.span_tree()
    assert len(roots) == 1
    outer = roots[0]
    assert outer["name"] == "outer"
    assert [c["name"] for c in outer["children"]] == ["inner", "sibling"]
    assert t.categories() == {"a", "b"}


def test_span_args_attach_to_end_event():
    t = Tracer()
    with t.span("s") as sp:
        sp.set("tier", "sat")
    end = [e for e in t.events if e["ph"] == "E"][0]
    assert end["args"]["tier"] == "sat"


def test_disabled_mode_is_noop():
    assert not obs.enabled()
    assert obs.tracer() is None
    # Spans degrade to the shared null singleton: no allocation, no events.
    sp = obs.span("anything", cat="solver")
    assert sp is NULL_SPAN
    with sp as inner:
        inner.set("ignored", 1)  # must not raise
    obs.instant("nothing")  # must not raise
    assert obs.export_trace("/tmp/never-written.jsonl") == 0
    # Counters still count when disabled -- they are the cheap always-on tier.
    c = obs.counter("t.always_on")
    c.inc()
    assert c.value == 1


def test_enable_disable_cycle():
    obs.enable(trace=True)
    assert obs.enabled()
    with obs.span("live") as sp:
        assert sp is not NULL_SPAN
    assert len(obs.tracer().events) == 2
    obs.disable()
    assert obs.span("dead") is NULL_SPAN


def test_timed_decorator():
    @obs.timed("t.work")
    def work(x):
        return x + 1

    assert work(1) == 2  # disabled: plain call
    obs.enable(trace=True)
    assert work(2) == 3
    h = obs.histogram("t.work.seconds")
    assert h.count == 1
    assert any(e["name"] == "t.work" for e in obs.tracer().events)


# ---------------------------------------------- stack-wide integration


def test_full_stack_trace_includes_solver_and_cpu_spans(tmp_path):
    from repro.core.end2end import run_adversarial
    from repro.logic import terms as T
    from repro.logic.solver import check_valid, tier_counts

    obs.enable(trace=True)
    # A solver query (exercises at least one portfolio tier)...
    x = T.var("x", 8)
    assert check_valid(T.eq(T.add(x, T.const(0, 8)), x)).valid
    # ...and a short adversarial end-to-end run on the ISA machine.
    result = run_adversarial(seed=1, n_frames=2, max_units=60_000)
    assert result.ok, result.detail

    out = tmp_path / "trace.jsonl"
    n_events = obs.export_trace(str(out))
    assert n_events > 0

    # Every line is valid Chrome-trace JSON with the required fields.
    events = load_jsonl(str(out))
    assert len(events) == n_events
    for ev in events:
        assert {"ph", "ts", "name"} <= set(ev)

    # The span tree covers both the solver and the CPU layers (and more).
    cats = {ev.get("cat") for ev in events}
    assert "solver" in cats
    assert "riscv" in cats
    assert len(cats & {"solver", "vcgen", "compiler", "riscv",
                       "end2end", "platform", "kami"}) >= 4

    tree_names = set()

    def walk(nodes):
        for node in nodes:
            tree_names.add(node["name"])
            walk(node["children"])

    walk(obs.tracer().span_tree())
    assert "solver.check_valid" in tree_names
    assert "riscv.run" in tree_names
    assert "end2end.run" in tree_names

    # Tier attribution lives in the registry (the deprecated STATS
    # read-through alias is gone -- see test_solver_stats_alias_removed).
    stats = tier_counts()
    assert sum(stats.values()) >= 1
    assert stats.keys() == {"structural", "interval", "sat"}

    # Key counters the CLI surfaces are non-zero.
    assert obs.counter("riscv.instructions").value == 60_000
    assert obs.counter("platform.bus_reads").value > 0
    assert obs.counter("end2end.prefix_checks").value > 0


def test_solver_stats_alias_removed():
    """The deprecated ``solver.STATS`` read-through (and its
    ``reset_stats``) are gone; `tier_counts` is the supported read."""
    from repro.logic import solver

    assert not hasattr(solver, "STATS")
    assert not hasattr(solver, "_TierStatsView")
    assert not hasattr(solver, "reset_stats")
    assert set(solver.tier_counts()) == {"structural", "interval", "sat"}
