"""Random-program differential testing of the pipelined processor.

The paper (§5.5) reports the baseline Kami processor had liveness bugs
"found through testing our application" and ISA bugs found during the
consistency proof. This file is that testing regime, systematized: random
RV32IM programs run to completion on the pipelined p4mm and on the
ISA-level machine, and the full architectural state must agree. Also
includes the §7.1.2 honesty check: the trace specification deliberately
does not constrain timing."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.kami.framework import ExternalWorld
from repro.kami.refinement import build_pipelined_system
from repro.riscv import insts as I
from repro.riscv.encode import encode_program
from repro.riscv.machine import RiscvMachine


class NullWorld(ExternalWorld):
    def call(self, method, args):
        raise KeyError(method)


SPIN = I.jal(0, 0)

# Register pool: small, to maximize hazards (RAW chains stress forwarding
# and the scoreboard); x28 is the memory base register.
REGS = [1, 2, 3, 4, 5]
MEM_BASE_REG = 28
MEM_BASE = 0x400


@st.composite
def straightline_programs(draw):
    """Random programs: ALU soup + memory ops + short forward branches,
    always ending in SPIN. Backward jumps are drawn from a fixed loop shape
    to guarantee termination."""
    body = []
    n = draw(st.integers(4, 24))
    for _ in range(n):
        kind = draw(st.sampled_from(["alu", "imm", "load", "store", "brfwd"]))
        if kind == "alu":
            body.append(I.r_type(draw(st.sampled_from(
                ["add", "sub", "mul", "mulhu", "div", "divu", "rem", "remu",
                 "sll", "srl", "sra", "slt", "sltu", "xor", "or", "and"])),
                draw(st.sampled_from(REGS)), draw(st.sampled_from(REGS)),
                draw(st.sampled_from(REGS))))
        elif kind == "imm":
            body.append(I.i_type(draw(st.sampled_from(
                ["addi", "slti", "sltiu", "xori", "ori", "andi"])),
                draw(st.sampled_from(REGS)), draw(st.sampled_from(REGS)),
                draw(st.integers(-2048, 2047))))
        elif kind == "load":
            body.append(I.load(draw(st.sampled_from(["lb", "lbu", "lh",
                                                     "lhu", "lw"])),
                               draw(st.sampled_from(REGS)), MEM_BASE_REG,
                               draw(st.integers(0, 15)) * 4))
        elif kind == "store":
            body.append(I.store(draw(st.sampled_from(["sb", "sh", "sw"])),
                                MEM_BASE_REG, draw(st.sampled_from(REGS)),
                                draw(st.integers(0, 15)) * 4))
        else:
            # Forward branch over the next instruction (always decodable).
            body.append(I.branch(draw(st.sampled_from(
                ["beq", "bne", "blt", "bge", "bltu", "bgeu"])),
                draw(st.sampled_from(REGS)), draw(st.sampled_from(REGS)), 8))
            body.append(I.i_type("addi", draw(st.sampled_from(REGS)), 0,
                                 draw(st.integers(-100, 100))))
    # A bounded backward loop to exercise the BTB and epoch machinery.
    body += [
        I.i_type("addi", 6, 0, draw(st.integers(1, 5))),   # counter
        I.r_type("add", 7, 7, 6),                          # loop:
        I.i_type("addi", 6, 6, -1),
        I.branch("bne", 6, 0, -8),
    ]
    body.append(SPIN)
    return body


def run_isa(instrs, seed_regs):
    image = encode_program(instrs)
    machine = RiscvMachine.with_program(image, mem_size=1 << 12)
    for reg, value in seed_regs.items():
        machine.set_register(reg, value)
    machine.set_register(MEM_BASE_REG, MEM_BASE)
    halt_pc = (len(instrs) - 1) * 4
    machine.run(10_000, until_pc=halt_pc)
    return machine


def run_p4mm(instrs, seed_regs):
    image = encode_program(instrs)
    system = build_pipelined_system(image, NullWorld(), ram_words=1 << 10,
                                    icache_words=len(instrs) + 4)
    proc = system.modules[0]
    for reg, value in seed_regs.items():
        proc.regs["rf"][reg] = value
    proc.regs["rf"][MEM_BASE_REG] = MEM_BASE
    halt_pc = (len(instrs) - 1) * 4
    system.run(200_000, stop=lambda s: proc.regs["pc"] == halt_pc
               and not proc.regs["f2d"] and not proc.regs["d2e"]
               and not proc.regs["e2w"])
    return proc, system


SEEDS = st.fixed_dictionaries({r: st.integers(0, 2**32 - 1) for r in REGS})


@settings(max_examples=60, deadline=None)
@given(straightline_programs(), SEEDS)
def test_p4mm_agrees_with_isa_on_random_programs(instrs, seed_regs):
    isa = run_isa(instrs, seed_regs)
    proc, system = run_p4mm(instrs, seed_regs)
    halt_pc = (len(instrs) - 1) * 4
    assert proc.regs["pc"] == halt_pc, "pipeline did not reach halt (hang?)"
    for reg in range(32):
        assert proc.regs["rf"][reg] == isa.get_register(reg), \
            "x%d diverged" % reg
    # Memory too.
    mem = system.modules[1]
    for off in range(0, 64, 4):
        kami_word = mem.regs["ram"][(MEM_BASE + off) >> 2]
        isa_word = isa.load(4, MEM_BASE + off)
        assert kami_word == isa_word, "mem[0x%x] diverged" % (MEM_BASE + off)


def test_pipeline_liveness_on_branch_storm():
    """A pathological alternating-branch program: the pipeline must keep
    retiring instructions (no deadlock from squash/scoreboard interplay) --
    the liveness property Kami's spec does not cover (§5.5)."""
    instrs = []
    for i in range(50):
        instrs.append(I.branch("beq", 0, 0, 8))    # always taken, +8
        instrs.append(I.i_type("addi", 1, 1, 1))   # skipped
    instrs.append(SPIN)
    proc, system = run_p4mm(instrs, {})
    assert proc.regs["pc"] == (len(instrs) - 1) * 4
    assert proc.regs["rf"][1] == 0  # every addi was squashed/skipped


def test_timing_is_not_specified():
    """§7.1.2: 'the top-level specification does not specify the timing of
    inputs and outputs' -- two devices with different latencies yield the
    same (spec-satisfying) trace but different cycle counts. The spec
    passing both runs *is* the limitation the paper discloses."""
    from repro.platform.net import lightbulb_packet
    from repro.riscv.machine import RiscvMachine
    from repro.sw.program import compiled_lightbulb, make_platform
    from repro.sw.specs import good_hl_trace

    results = {}
    for latency in (0, 6):
        compiled = compiled_lightbulb(stack_top=1 << 16)
        plat = make_platform(rx_latency=latency)
        machine = RiscvMachine.with_program(compiled.image, mem_size=1 << 16,
                                            mmio_bus=plat.bus)
        machine.run(1_500_000, stop=lambda m: plat.lan.rx_enabled)
        plat.lan.inject_frame(lightbulb_packet(True))
        start = machine.instret
        machine.run(3_000_000, stop=lambda m: plat.gpio.bulb_on)
        results[latency] = (machine.instret - start, machine.trace)
    fast_cycles, fast_trace = results[0]
    slow_cycles, slow_trace = results[6]
    assert slow_cycles > fast_cycles * 1.2  # timing differs substantially
    spec = good_hl_trace()
    assert spec.prefix_of(fast_trace) and spec.prefix_of(slow_trace)
