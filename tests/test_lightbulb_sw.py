"""Tests for the lightbulb software stack: behavior at the source level,
the trace specification, and the program-logic verification (paper §3, §5.1)."""

import pytest

from repro.bedrock2.builder import call, var
from repro.bedrock2.semantics import (
    Interpreter, Memory, State, to_mmio_triples,
)
from repro.platform.net import (
    lightbulb_packet, non_udp_packet, oversize_packet, truncated_packet,
    wrong_ethertype_packet,
)
from repro.sw import constants as C
from repro.sw.program import lightbulb_program, make_platform
from repro.sw.specs import boot_seq, good_hl_trace, iteration
from repro.traces.predicates import Star


PROG = lightbulb_program()


def run_session(frames, loops=None, platform=None):
    """Boot the stack, inject ``frames``, run one loop iteration per frame
    (plus two idle polls); returns (platform, mmio trace)."""
    plat = platform or make_platform()
    mem = Memory.from_regions([(0x100000, bytes(C.RX_BUFFER_BYTES))])
    state = State(mem, {"buf": 0x100000})
    interp = Interpreter(PROG, ext=plat.ext_handler(), fuel=20_000_000)
    interp.exec_cmd(call(("e",), "lightbulb_init"), state)
    for frame in frames:
        plat.lan.inject_frame(frame)
    for _ in range(loops if loops is not None else len(frames) + 2):
        interp.exec_cmd(call(("e",), "lightbulb_loop", var("buf")), state)
    return plat, to_mmio_triples(state.trace)


# -- behavior ----------------------------------------------------------------------

def test_bulb_turns_on_and_off():
    plat, _ = run_session([lightbulb_packet(True)])
    assert plat.gpio.bulb_on
    plat2, _ = run_session([lightbulb_packet(True), lightbulb_packet(False)])
    assert not plat2.gpio.bulb_on
    assert plat2.gpio.bulb_history == [1, 0]


def test_malformed_packets_ignored():
    for frame in (truncated_packet(), wrong_ethertype_packet(),
                  non_udp_packet(), oversize_packet(2000)):
        plat, _ = run_session([frame])
        assert not plat.gpio.bulb_on
        assert plat.gpio.bulb_history == []


def test_command_byte_bit0_decides():
    on2 = lightbulb_packet(True)  # cmd byte 0x01
    frame = bytearray(lightbulb_packet(False))
    frame[42] = 0x02  # bit 0 clear: off
    plat, _ = run_session([on2, bytes(frame)])
    assert not plat.gpio.bulb_on
    frame[42] = 0x03  # bit 0 set: on
    plat, _ = run_session([bytes(frame)])
    assert plat.gpio.bulb_on


def test_app_never_transmits():
    plat, trace = run_session([lightbulb_packet(True), truncated_packet()])
    # No store ever writes the LAN's TX-related registers: the only writes
    # are SPI TXDATA (transport), CSMODE, and GPIO.
    allowed = {C.SPI_TXDATA_ADDR, C.SPI_CSMODE_ADDR,
               C.GPIO_OUTPUT_EN_ADDR, C.GPIO_OUTPUT_VAL_ADDR}
    for kind, addr, _ in trace:
        if kind == "st":
            assert addr in allowed


def test_device_timeout_returns_error_not_hang():
    # A dead SPI device (no slave): RXDATA stays empty forever; the driver
    # must give up after SPI_PATIENCE polls (total correctness).
    plat = make_platform()
    plat.spi.slave = None
    plat.spi.rx_latency = 10**9  # never ready
    mem = Memory.from_regions([(0x100000, bytes(C.RX_BUFFER_BYTES))])
    state = State(mem, {"buf": 0x100000})
    interp = Interpreter(PROG, ext=plat.ext_handler(), fuel=20_000_000)
    interp.exec_cmd(call(("e",), "lightbulb_init"), state)
    assert state.locals["e"] != 0  # init reports the failure


# -- the trace specification -------------------------------------------------------

SPEC = good_hl_trace()


def test_idle_trace_in_spec():
    _, trace = run_session([], loops=3)
    assert SPEC.matches(trace)


def test_command_traces_in_spec():
    _, trace = run_session([lightbulb_packet(True), lightbulb_packet(False)])
    assert SPEC.matches(trace)


def test_malformed_traces_in_spec():
    _, trace = run_session([truncated_packet(), oversize_packet(2000),
                            wrong_ethertype_packet(), non_udp_packet()])
    assert SPEC.matches(trace)


def test_prefixes_admitted_everywhere():
    _, trace = run_session([lightbulb_packet(True), truncated_packet()])
    # Sampled cuts plus a dense band around a transaction boundary.
    cuts = set(range(0, len(trace) + 1, 97)) | set(range(30, 70)) \
        | {len(trace) - 1, len(trace)}
    for cut in sorted(cuts):
        assert SPEC.prefix_of(trace[:cut]), "prefix rejected at %d" % cut


def test_spec_rejects_unsolicited_bulb_write():
    _, trace = run_session([], loops=1)
    tampered = trace + [("st", C.GPIO_OUTPUT_VAL_ADDR, 1 << C.LIGHTBULB_PIN)]
    assert not SPEC.matches(tampered)
    assert not SPEC.prefix_of(tampered)


def test_spec_rejects_wrong_bulb_polarity():
    # An OFF packet followed by an ON actuation must be rejected.
    _, trace = run_session([lightbulb_packet(False)])
    flipped = [(k, a, (1 << C.LIGHTBULB_PIN) if (k == "st" and a == C.GPIO_OUTPUT_VAL_ADDR) else v)
               for (k, a, v) in trace]
    # Keep kinds/addresses, flip only the bulb write's value:
    flipped = []
    for (k, a, v) in trace:
        if k == "st" and a == C.GPIO_OUTPUT_VAL_ADDR:
            flipped.append((k, a, 1 << C.LIGHTBULB_PIN))
        else:
            flipped.append((k, a, v))
    assert SPEC.matches(trace)
    assert not SPEC.matches(flipped)


def test_spec_rejects_dropped_boot():
    _, trace = run_session([], loops=1)
    assert not SPEC.matches(trace[5:])  # missing the start of BootSeq


def test_boot_seq_standalone():
    plat = make_platform()
    mem = Memory()
    state = State(mem, {})
    interp = Interpreter(PROG, ext=plat.ext_handler(), fuel=20_000_000)
    interp.exec_cmd(call(("e",), "lightbulb_init"), state)
    assert boot_seq().matches(to_mmio_triples(state.trace))


def test_iteration_star_covers_loops_only():
    plat = make_platform()
    # Skip boot: manually enable RX so polls see the device.
    _, full = run_session([lightbulb_packet(True)], platform=plat)
    # Find where boot ends: first RX_FIFO_INF transaction begins with the
    # CSMODE hold preceding a FASTREAD of RX_FIFO_INF; simpler: spec split.
    boot = boot_seq()
    loops = Star(iteration())
    matched = False
    for end, env in boot.residuals(full, 0, {}):
        if loops.matches(full[end:]):
            matched = True
            break
    assert matched


# -- program-logic verification (the headline checks) --------------------------------

def test_verify_all_driver_functions():
    from repro.sw.verify import verify_all

    run = verify_all()
    names = {r.function for r in run.reports}
    assert {"spi_write", "spi_read", "spi_xchg", "lan9250_readword",
            "lan9250_writeword", "lan9250_wait_for_boot", "lan9250_init",
            "lan9250_drain", "lan9250_tryrecv", "lightbulb_init",
            "lightbulb_loop"} <= names
    assert run.total_obligations > 80


def test_buggy_driver_fails_verification():
    from repro.sw.verify import verify_drain_buggy_fails

    err = verify_drain_buggy_fails()
    # The failing obligation is the store into the buffer.
    assert "store" in err.context


def test_buggy_driver_overflows_at_source_level():
    """The paper's exploit, at the Bedrock2 level: with the buggy driver an
    oversize frame writes past the 1520-byte buffer, which the partial-
    memory semantics flags as UB (the 'unprovable goal' made concrete)."""
    from repro.bedrock2.semantics import UndefinedBehavior

    buggy = lightbulb_program(buggy_driver=True)
    plat = make_platform()
    mem = Memory.from_regions([(0x100000, bytes(C.RX_BUFFER_BYTES))])
    state = State(mem, {"buf": 0x100000})
    interp = Interpreter(buggy, ext=plat.ext_handler(), fuel=50_000_000)
    interp.exec_cmd(call(("e",), "lightbulb_init"), state)
    plat.lan.inject_frame(oversize_packet(2000))
    with pytest.raises(UndefinedBehavior):
        interp.exec_cmd(call(("e",), "lightbulb_loop", var("buf")), state)


def test_fixed_driver_survives_oversize_at_source_level():
    plat, trace = run_session([oversize_packet(2000)])
    assert not plat.gpio.bulb_on
    assert SPEC.matches(trace)
