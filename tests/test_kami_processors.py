"""Tests for the Kami processors: spec correctness, pipeline refinement,
processor-ISA consistency (paper sections 5.5, 5.7, 5.8)."""

import pytest

from repro.bedrock2.builder import (
    block, call, func, interact, lit, set_, var, while_,
)
from repro.compiler import compile_program
from repro.kami.framework import ExternalWorld
from repro.kami.memory import ram_snapshot
from repro.kami.refinement import (
    build_pipelined_system, build_spec_system, check_refinement,
)
from repro.riscv import insts as I
from repro.riscv.encode import encode_program
from repro.riscv.machine import RiscvMachine


class NullWorld(ExternalWorld):
    def call(self, method, args):
        raise KeyError(method)


class ScriptedWorld(ExternalWorld):
    """Deterministic MMIO device: reads follow a fixed recurrence; writes
    are accepted. Fresh instances replay identically."""

    def __init__(self):
        self.state = 0
        self.writes = []

    def call(self, method, args):
        if method == "mmioRead":
            self.state = (self.state * 5 + args[0] + 1) & 0xFFFFFFFF
            return self.state
        if method == "mmioWrite":
            self.writes.append((args[0], args[1]))
            return None
        raise KeyError(method)


def asm(*instrs):
    return encode_program(list(instrs))


SPIN = I.jal(0, 0)  # halt: jump-to-self


# -- spec processor vs ISA machine (kstep1_sound analogue, §5.8) -----------------

class LockstepBus:
    """Adapter giving the RiscvMachine the same world as a Kami system."""

    def __init__(self, world, ram_bytes):
        self.world = world
        self.ram_bytes = ram_bytes

    def is_mmio(self, addr):
        return addr >= self.ram_bytes

    def read(self, addr):
        return self.world.call("mmioRead", (addr,))

    def write(self, addr, value):
        self.world.call("mmioWrite", (addr, value))


PROGRAMS = {
    "arith": asm(
        I.i_type("addi", 1, 0, 100),
        I.i_type("addi", 2, 0, 23),
        I.r_type("add", 3, 1, 2),
        I.r_type("sub", 4, 1, 2),
        I.r_type("mul", 5, 1, 2),
        I.r_type("divu", 6, 1, 2),
        I.r_type("and", 7, 1, 2),
        I.r_type("xor", 8, 1, 2),
        SPIN,
    ),
    "branchy": asm(
        I.i_type("addi", 1, 0, 10),     # counter
        I.i_type("addi", 2, 0, 0),      # acc
        # loop: acc += counter; counter -= 1; bne counter, x0, loop
        I.r_type("add", 2, 2, 1),
        I.i_type("addi", 1, 1, -1),
        I.branch("bne", 1, 0, -8),
        SPIN,
    ),
    "memory": asm(
        I.u_type("lui", 1, 0x1),        # x1 = 0x1000
        I.i_type("addi", 2, 0, -1),     # x2 = 0xFFFFFFFF
        I.store("sw", 1, 2, 0),
        I.store("sb", 1, 0, 1),         # clear byte 1
        I.load("lw", 3, 1, 0),          # x3 = 0xFFFF00FF
        I.load("lb", 4, 1, 3),          # x4 = sign-extended 0xFF
        I.load("lhu", 5, 1, 2),         # x5 = 0xFFFF
        SPIN,
    ),
    "jumps": asm(
        I.jal(1, 8),                    # skip next
        I.i_type("addi", 2, 0, 99),     # (skipped)
        I.i_type("addi", 3, 0, 7),
        I.jalr(4, 1, 4),                # jump to x1+4 = 8: re-executes addi x3
        SPIN,
    ),
}


@pytest.mark.parametrize("name", list(PROGRAMS))
def test_spec_processor_matches_isa_machine(name):
    """Lock-step differential execution: after every spec-processor step,
    registers and pc must match the software-oriented ISA semantics."""
    image = PROGRAMS[name]
    world = ScriptedWorld()
    system = build_spec_system(image, world, ram_words=1 << 12)
    proc = system.modules[0]
    machine = RiscvMachine.with_program(image, mem_size=1 << 14,
                                        mmio_bus=LockstepBus(ScriptedWorld(),
                                                             1 << 14))
    for _ in range(60):
        if machine.pc == proc.regs["pc"] and \
           decode_spin(image, machine.pc):
            break
        label = system.step()
        if label is None:
            break
        machine.step()
        assert proc.regs["pc"] == machine.pc, name
        for r in range(32):
            assert proc.regs["rf"][r] == machine.get_register(r), \
                "x%d mismatch in %s" % (r, name)


def decode_spin(image, pc):
    return image[pc:pc + 4] == bytes.fromhex("6f000000")


def test_spec_processor_mmio_trace():
    # lw x1, 0(x2) with x2 pointing outside RAM produces an mmioRead label.
    image = asm(
        I.u_type("lui", 2, 0x10024),      # 0x10024000, beyond 16KB RAM
        I.load("lw", 1, 2, 0),
        I.store("sw", 2, 1, 4),
        SPIN,
    )
    world = ScriptedWorld()
    system = build_spec_system(image, world, ram_words=1 << 12)
    system.run(40, stop=lambda s: len(s.mmio_trace()) >= 2)
    trace = system.mmio_trace()
    assert trace[0][0] == "ld" and trace[0][1] == 0x10024000
    assert trace[1][0] == "st" and trace[1][1] == 0x10024004
    assert trace[1][2] == trace[0][2]  # stored what was read


# -- pipelined processor ----------------------------------------------------------

def pipelined_result(image, reg, max_steps=20000, icache_words=64,
                     world=None):
    system = build_pipelined_system(image, world or NullWorld(),
                                    ram_words=1 << 12,
                                    icache_words=icache_words)
    proc = system.modules[0]
    system.run(max_steps)
    return proc.regs["rf"][reg], system


def test_pipeline_executes_straightline():
    value, _ = pipelined_result(PROGRAMS["arith"], 3)
    assert value == 123


def test_pipeline_executes_loop_with_btb():
    value, system = pipelined_result(PROGRAMS["branchy"], 2)
    assert value == sum(range(1, 11))
    proc = system.modules[0]
    assert proc.regs["btb"], "BTB should have learned the loop branch"


def test_pipeline_byte_enables():
    value, system = pipelined_result(PROGRAMS["memory"], 3)
    assert value == 0xFFFF00FF
    proc = system.modules[0]
    assert proc.regs["rf"][4] == 0xFFFFFFFF
    assert proc.regs["rf"][5] == 0xFFFF


def test_pipeline_icache_filled_eagerly():
    system = build_pipelined_system(PROGRAMS["arith"], NullWorld(),
                                    ram_words=1 << 12, icache_words=32)
    proc = system.modules[0]
    mem = system.modules[1]
    # Run until the fill completes.
    system.run(200, stop=lambda s: proc.regs["icache_ready"] == 1)
    assert proc.regs["icache_ready"] == 1
    snapshot = ram_snapshot(mem)
    assert proc.regs["icache"] == snapshot[:32]


def test_pipeline_squashes_wrong_path():
    # A taken branch over an MMIO write: the wrong-path store must never
    # reach the device.
    image = asm(
        I.u_type("lui", 2, 0x10024),
        I.i_type("addi", 1, 0, 1),
        I.branch("bne", 1, 0, 8),       # taken: skip the store
        I.store("sw", 2, 1, 0),         # wrong path!
        I.i_type("addi", 3, 0, 5),
        SPIN,
    )
    world = ScriptedWorld()
    value, system = pipelined_result(image, 3, world=world, icache_words=32)
    assert value == 5
    assert world.writes == []
    assert system.mmio_trace() == []


# -- refinement (§5.7) --------------------------------------------------------------

REFINEMENT_PROGRAMS = [
    PROGRAMS["arith"],
    PROGRAMS["branchy"],
    PROGRAMS["memory"],
    PROGRAMS["jumps"],
    # MMIO-heavy: poll an address until it returns an even value, then echo.
    asm(
        I.u_type("lui", 2, 0x10024),
        I.load("lw", 1, 2, 0),          # poll:
        I.i_type("andi", 3, 1, 1),
        I.branch("bne", 3, 0, -8),      # odd -> poll again
        I.store("sw", 2, 1, 4),
        SPIN,
    ),
]


@pytest.mark.parametrize("idx", range(len(REFINEMENT_PROGRAMS)))
def test_pipeline_refines_spec(idx):
    image = REFINEMENT_PROGRAMS[idx]
    result = check_refinement(image, ScriptedWorld, impl_steps=3000,
                              ram_words=1 << 12, icache_words=64,
                              spec_step_budget=3000)
    assert result.ok, result.detail


def test_refinement_on_compiled_bedrock2_program():
    prog = {"main": func("main", (), ("r",), block(
        set_("i", lit(0)), set_("r", lit(0)),
        while_(var("i") < 5, block(
            interact(["v"], "MMIOREAD", lit(0x10024048)),
            interact([], "MMIOWRITE", lit(0x1002404C), var("v") + var("i")),
            set_("r", var("r") + var("v")),
            set_("i", var("i") + 1),
        )),
    ))}
    compiled = compile_program(prog, entry="main", stack_top=0x4000)
    result = check_refinement(compiled.image, ScriptedWorld,
                              impl_steps=20000, ram_words=1 << 12,
                              icache_words=256, spec_step_budget=20000)
    assert result.ok, result.detail
    assert len(result.impl_trace) == 10  # 5 reads + 5 writes


def test_stale_instructions_break_refinement():
    """Self-modifying code diverges between I$ and memory -- the hazard of
    paper §5.6 that the XAddrs discipline exists to prevent. The pipelined
    processor keeps executing the stale cached instruction; the spec
    re-fetches from memory. Demonstrate the divergence is real."""
    image = asm(
        # Overwrite the instruction at offset 16 (addi x3,x0,7) with
        # addi x3, x0, 42 = 0x02A00193, then execute it.
        I.u_type("lui", 1, 0x02A00),
        I.i_type("addi", 1, 1, 0x193),
        I.i_type("addi", 2, 0, 16),
        I.store("sw", 2, 1, 0),
        I.i_type("addi", 3, 0, 7),      # offset 16: stale version
        SPIN,
    )
    spec_sys = build_spec_system(image, NullWorld(), ram_words=1 << 12)
    spec_proc_ = spec_sys.modules[0]
    spec_sys.run(20)
    impl_sys = build_pipelined_system(image, NullWorld(), ram_words=1 << 12,
                                      icache_words=32)
    impl_proc = impl_sys.modules[0]
    impl_sys.run(3000)
    assert spec_proc_.regs["rf"][3] == 42      # spec sees the new instruction
    assert impl_proc.regs["rf"][3] == 7        # pipeline executed stale I$
