"""Fleet simulator: event core, fabric, online checker, determinism."""

import json

import pytest

from repro.net.faults import PROFILES, FaultProfile, FaultyLink
from repro.net.fleet import (
    announce_frame,
    fleet_meta,
    run_fleet,
    run_fleet_shard,
)
from repro.net.node import DOORLOCK, LIGHTBULB, Node, node_mac
from repro.net.sim import Simulator, derive_rng
from repro.net.switch import BROADCAST_MAC, MIN_FRAME, EthernetSwitch
from repro.net.workload import WorkloadConfig, generate, junk_command
from repro.platform.net import is_valid_command, lightbulb_packet
from repro.traces.online import OnlineChecker
from repro.traces.predicates import Star, seq, st, union


# ---------------------------------------------------------------- simulator


def test_simulator_orders_by_time_then_schedule_order():
    sim = Simulator()
    fired = []
    sim.at(10, lambda: fired.append("b"))
    sim.at(5, lambda: fired.append("a"))
    sim.at(10, lambda: fired.append("c"))  # same time: scheduling order
    assert sim.run_until(10) == 3
    assert fired == ["a", "b", "c"]
    assert sim.now == 10


def test_simulator_horizon_and_pending():
    sim = Simulator()
    fired = []
    sim.at(100, lambda: fired.append(1))
    assert sim.run_until(50) == 0
    assert sim.now == 50
    assert sim.pending() == 1
    # Scheduling in the past clamps to now instead of rewinding time.
    sim.at(7, lambda: fired.append(2))
    sim.run_until(100)
    assert fired == [2, 1]


def test_events_scheduled_during_run_fire_in_order():
    sim = Simulator()
    fired = []

    def cascade():
        fired.append("outer")
        sim.after(0, lambda: fired.append("inner"))

    sim.at(3, cascade)
    sim.run_until(3)
    assert fired == ["outer", "inner"]


def test_derive_rng_is_stable_and_decorrelated():
    a = derive_rng(42, "link", 1)
    b = derive_rng(42, "link", 1)
    c = derive_rng(42, "link", 2)
    draws_a = [a.randrange(1000) for _ in range(8)]
    assert draws_a == [b.randrange(1000) for _ in range(8)]
    assert draws_a != [c.randrange(1000) for _ in range(8)]


# ------------------------------------------------------------------- faults


def test_clean_link_delivers_everything_on_time():
    link = FaultyLink(PROFILES["clean"], derive_rng(0, "t"))
    out = link.transmit(b"x" * 60)
    assert out == [(PROFILES["clean"].latency, b"x" * 60)]
    assert link.counters["dropped"] == 0
    assert link.counters["delivered"] == 1


def test_lossy_link_accounting_is_consistent_and_deterministic():
    def run():
        link = FaultyLink(PROFILES["chaos"], derive_rng(7, "t"))
        for i in range(400):
            link.transmit(bytes([i & 0xFF]) * 50)
        return link.stats()

    stats = run()
    assert stats == run()
    assert stats["offered"] == 400
    assert stats["dropped"] > 0
    assert stats["corrupted"] > 0
    assert stats["duplicated"] > 0
    assert stats["reordered"] > 0
    # Every offered frame is either eaten or delivered (plus duplicates).
    assert stats["delivered"] == (stats["offered"] - stats["dropped"]
                                  + stats["duplicated"])


def test_corruption_flips_bits_but_keeps_length():
    profile = FaultProfile("allcorrupt", corrupt=1.0)
    link = FaultyLink(profile, derive_rng(3, "t"))
    frame = bytes(64)
    (delay, data), = link.transmit(frame)
    assert len(data) == len(frame)
    assert data != frame


# ------------------------------------------------------------------- switch


def _clean_switch(queue_depth=16):
    sim = Simulator()
    switch = EthernetSwitch(sim, queue_depth=queue_depth)
    return sim, switch


def _port(sim, switch, name, deliver=None, profile="clean"):
    link = FaultyLink(PROFILES[profile], derive_rng(0, name))
    return switch.add_port(name, link, deliver)


def test_switch_floods_unknown_then_unicasts_learned():
    sim, switch = _clean_switch()
    got_a, got_b = [], []
    pa = _port(sim, switch, "a", got_a.append)
    pb = _port(sim, switch, "b", got_b.append)
    pc = _port(sim, switch, "c")
    mac_a, mac_b = node_mac(0), node_mac(1)
    # b announces itself: flooded (a learns nothing; the switch does).
    switch.ingress(pb, announce_frame(mac_b))
    # a -> b is now unicast, not flooded to c.
    switch.ingress(pa, mac_b + mac_a + b"\x08\x00" + bytes(40))
    sim.run_until(10_000)
    assert got_b and got_b[0][:6] == mac_b
    assert got_a == [announce_frame(mac_b)]
    assert switch.frames_flooded == 1
    assert switch.frames_unicast == 1
    assert switch.mac_table[mac_b] == pb
    assert pc is not None


def test_switch_filters_same_segment_and_counts_runts():
    sim, switch = _clean_switch()
    got = []
    pa = _port(sim, switch, "a", got.append)
    _port(sim, switch, "b")
    mac = node_mac(4)
    switch.ingress(pa, announce_frame(mac))
    switch.ingress(pa, mac + mac + b"\x08\x00" + bytes(40))  # to itself
    switch.ingress(pa, b"\x00" * (MIN_FRAME - 1))            # runt
    sim.run_until(10_000)
    assert switch.frames_filtered == 1
    assert switch.runts == 1
    assert got == []  # nothing echoes back to the ingress port


def test_switch_bounded_queue_tail_drops():
    sim, switch = _clean_switch(queue_depth=1)
    got = []
    src = _port(sim, switch, "src")
    dst = _port(sim, switch, "dst", got.append)
    mac = node_mac(9)
    switch.ingress(dst, announce_frame(mac))
    sim.run_until(1_000)
    frame = mac + node_mac(8) + b"\x08\x00" + bytes(40)
    # Two back-to-back unicasts: the link holds one in flight (latency
    # 40), so the second is tail-dropped and accounted.
    switch.ingress(src, frame)
    switch.ingress(src, frame)
    assert switch.queue_overflows == 1
    sim.run_until(2_000)
    assert len(got) == 1
    assert switch.stats()["ports"][dst]["overflows"] == 1


# ----------------------------------------------------------- online checker


def test_online_checker_matches_prefix_of_on_synthetic_traces():
    spec = seq(st(1), st(2)) + Star(union(seq(st(3)),
                                          seq(st(4), st(5))))
    # Enumerate every trace over a tiny alphabet; the incremental
    # verdict must equal the authoritative prefix_of at every length.
    alphabet = [("st", a, 0) for a in (1, 2, 3, 4, 5)]
    rng = derive_rng(11, "synthetic")
    for _ in range(200):
        trace = []
        checker = OnlineChecker(spec)
        assert checker.incremental
        for _ in range(rng.randrange(1, 10)):
            trace.append(alphabet[rng.randrange(len(alphabet))])
            assert checker.check(trace) == spec.prefix_of(trace), trace


def test_online_checker_rejects_shrinking_trace():
    spec = seq(st(1)) + Star(seq(st(2)))
    checker = OnlineChecker(spec)
    checker.check([("st", 1, 0)])
    with pytest.raises(ValueError):
        checker.check([])


def test_online_checker_falls_back_on_other_spec_shapes():
    spec = seq(st(1), st(2))
    checker = OnlineChecker(spec)
    assert not checker.incremental
    assert checker.check([("st", 1, 0)])
    assert not checker.check([("st", 2, 0)])


# ----------------------------------------------------------------- workload


def test_workload_is_deterministic_and_in_range():
    meta = fleet_meta(4)
    t1 = generate(3, meta, 40_000)
    t2 = generate(3, meta, 40_000)
    assert t1 == t2
    assert t1
    macs = {mac for _, _, mac in meta}
    for t, frame in t1:
        assert 0 <= t < 40_000
        assert frame[:6] in macs | {BROADCAST_MAC} or len(frame) < 6


def test_junk_commands_never_carry_a_parseable_lightbulb_command():
    rng = derive_rng(5, "junk")
    for _ in range(300):
        frame = junk_command(rng, LIGHTBULB)
        # Bit-flipped variants may stay parseable (that is the point:
        # the command byte may survive); everything else must not.
        if len(frame) != len(lightbulb_packet(True)):
            if len(frame) > 1520 or len(frame) < 43:
                assert is_valid_command(frame) is None


def test_random_garbage_never_parses_as_valid_command():
    from repro.platform.net import random_garbage

    rng = derive_rng(0, "garbage")
    for _ in range(500):
        assert is_valid_command(random_garbage(rng, 200)) is None


# -------------------------------------------------------------------- nodes


def test_node_mac_unique_and_locally_administered():
    macs = {node_mac(i) for i in range(300)}
    assert len(macs) == 300
    for mac in macs:
        assert mac[0] & 0x02  # locally administered
        assert not mac[0] & 0x01  # unicast


def test_node_detects_an_out_of_spec_trace():
    node = Node(0, LIGHTBULB)
    node.run(20_000)
    assert node.check_spec()
    # Forge an MMIO store no lightbulb firmware may emit: the checker
    # must flag it and the full predicate must agree.
    node.machine.trace.append(("st", 0xDEAD_BEEF, 1))
    assert not node.check_spec()
    assert not node.ok
    assert node.violation and "not a prefix" in node.violation
    # Failed nodes stay failed; further checks are skipped.
    assert not node.check_spec()


# -------------------------------------------------------------------- fleet


def test_fleet_clean_profile_all_nodes_in_spec():
    report = run_fleet(nodes=2, duration=14_000, profile="clean", seed=1)
    summary = report["summary"]
    assert summary["violations"] == 0
    assert summary["errors"] == 0
    assert summary["nodes_ok"] == 2
    kinds = [row["kind"] for row in report["nodes"]]
    assert kinds == [LIGHTBULB, DOORLOCK]
    assert summary["spec_checks"] > 0


def test_fleet_report_is_byte_identical_across_jobs():
    kwargs = dict(nodes=4, duration=12_000, profile="lossy", seed=2)
    r1 = run_fleet(jobs=1, **kwargs)
    r2 = run_fleet(jobs=2, **kwargs)
    j1 = json.dumps(r1, sort_keys=True, indent=2)
    j2 = json.dumps(r2, sort_keys=True, indent=2)
    assert j1 == j2


def test_fleet_shards_replay_identical_fabric():
    kwargs = dict(nodes=3, duration=10_000, profile="chaos", seed=4)
    full = run_fleet_shard(owned=None, **kwargs)
    partial = run_fleet_shard(owned=[1], **kwargs)
    assert partial["fabric"] == full["fabric"]
    assert [row["node"] for row in partial["nodes"]] == [1]
    assert partial["nodes"][0] == full["nodes"][1]


def test_fleet_flushes_fabric_counters_into_obs():
    from repro import obs

    before = obs.counter("net.frames_offered").value
    report = run_fleet(nodes=2, duration=10_000, profile="lossy", seed=0)
    delta = obs.counter("net.frames_offered").value - before
    assert delta == report["summary"]["frames_offered"]
    assert obs.counter("net.fleet_runs").value > 0


def test_fleet_rejects_unknown_profile():
    with pytest.raises(ValueError):
        run_fleet(nodes=1, duration=100, profile="nosuch", seed=0)


def test_workload_config_defaults_oversubscribe_with_storm():
    config = WorkloadConfig(start=0, mean_gap=100)
    meta = fleet_meta(1)
    timeline = generate(0, meta, 10_000, config)
    assert len(timeline) > 20  # a genuine storm when configured hot
