"""Encoder/decoder round-trip and format tests for RV32IM."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.riscv import insts as I
from repro.riscv.decode import decode
from repro.riscv.encode import encode, encode_program


def test_encode_addi_known_word():
    # addi x1, x2, 5  ->  0x00510093
    assert encode(I.i_type("addi", 1, 2, 5)) == 0x00510093


def test_encode_add_known_word():
    # add x3, x1, x2 -> 0x002081B3
    assert encode(I.r_type("add", 3, 1, 2)) == 0x002081B3


def test_encode_lui_known_word():
    # lui x5, 0x12345 -> 0x123452B7
    assert encode(I.u_type("lui", 5, 0x12345)) == 0x123452B7


def test_encode_negative_store_offset():
    # sw x2, -4(x8) -> imm 0xFFC split across funct7/rd fields
    w = encode(I.store("sw", 8, 2, -4))
    assert decode(w) == I.store("sw", 8, 2, -4)


def test_encode_program_little_endian():
    image = encode_program([I.i_type("addi", 1, 0, 1)])
    assert len(image) == 4
    assert int.from_bytes(image, "little") == encode(I.i_type("addi", 1, 0, 1))


def test_decode_invalid_raises():
    with pytest.raises(I.InvalidInstruction):
        decode(0x00000000)
    with pytest.raises(I.InvalidInstruction):
        decode(0xFFFFFFFF)


def test_branch_offset_must_be_even():
    with pytest.raises(ValueError):
        I.branch("beq", 1, 2, 3)


def test_imm_range_checks():
    with pytest.raises(ValueError):
        I.i_type("addi", 1, 1, 5000)
    with pytest.raises(ValueError):
        I.u_type("lui", 1, 1 << 20)
    with pytest.raises(ValueError):
        I.shift_imm("slli", 1, 1, 32)


regs = st.integers(0, 31)


@st.composite
def instructions(draw):
    kind = draw(st.sampled_from(["r", "i", "shift", "load", "store", "branch",
                                 "u", "jal", "jalr"]))
    if kind == "r":
        return I.r_type(draw(st.sampled_from(I.R_TYPE)), draw(regs),
                        draw(regs), draw(regs))
    if kind == "i":
        return I.i_type(draw(st.sampled_from(I.I_ARITH)), draw(regs),
                        draw(regs), draw(st.integers(-2048, 2047)))
    if kind == "shift":
        return I.shift_imm(draw(st.sampled_from(I.I_SHIFT)), draw(regs),
                           draw(regs), draw(st.integers(0, 31)))
    if kind == "load":
        return I.load(draw(st.sampled_from(I.I_LOAD)), draw(regs),
                      draw(regs), draw(st.integers(-2048, 2047)))
    if kind == "store":
        return I.store(draw(st.sampled_from(I.S_TYPE)), draw(regs),
                       draw(regs), draw(st.integers(-2048, 2047)))
    if kind == "branch":
        return I.branch(draw(st.sampled_from(I.B_TYPE)), draw(regs),
                        draw(regs), draw(st.integers(-2048, 2047)) * 2)
    if kind == "u":
        return I.u_type(draw(st.sampled_from(I.U_TYPE)), draw(regs),
                        draw(st.integers(0, (1 << 20) - 1)))
    if kind == "jal":
        return I.jal(draw(regs), draw(st.integers(-(1 << 19), (1 << 19) - 1)) * 2)
    return I.jalr(draw(regs), draw(regs), draw(st.integers(-2048, 2047)))


@settings(max_examples=500, deadline=None)
@given(instructions())
def test_encode_decode_roundtrip(instr):
    assert decode(encode(instr)) == instr


@settings(max_examples=200, deadline=None)
@given(instructions())
def test_encoding_fits_32_bits(instr):
    assert 0 <= encode(instr) < (1 << 32)


# -- complete-coverage audit: every RV32IM mnemonic must encode, decode
# -- back to itself, and disassemble to real assembly (never the raw
# -- dataclass repr the formatter falls back to for unknown shapes).


def _golden_sample(name):
    if name in I.R_TYPE:
        return I.r_type(name, 10, 11, 12)
    if name in I.I_ARITH:
        return I.i_type(name, 10, 11, -5)
    if name in I.I_SHIFT:
        return I.shift_imm(name, 10, 11, 3)
    if name in I.I_LOAD:
        return I.load(name, 10, 2, -4)
    if name in I.S_TYPE:
        return I.store(name, 2, 1, 8)
    if name in I.B_TYPE:
        return I.branch(name, 10, 11, 16)
    if name in I.U_TYPE:
        return I.u_type(name, 10, 0x12345)
    if name == "jal":
        return I.jal(1, 2048)
    assert name == "jalr"
    return I.jalr(1, 5, 4)


def test_mnemonic_groups_partition_the_isa():
    groups = (I.R_TYPE, I.I_ARITH, I.I_SHIFT, I.I_LOAD, I.S_TYPE,
              I.B_TYPE, I.U_TYPE, I.J_TYPE, I.I_JUMP)
    assert sum(len(g) for g in groups) == len(set(I.ALL_MNEMONICS))
    assert set(I.ALL_MNEMONICS) == set().union(*map(set, groups))


@pytest.mark.parametrize("name", sorted(I.ALL_MNEMONICS))
def test_golden_roundtrip_and_disasm(name):
    from repro.riscv.disasm import format_instr

    instr = _golden_sample(name)
    assert decode(encode(instr)) == instr
    text = format_instr(instr, pc=0x100)
    assert not text.startswith("Instr("), (name, text)
    assert text.split()[0] == name, (name, text)


def test_disasm_pseudo_instructions():
    from repro.riscv.disasm import format_instr

    assert format_instr(I.jal(0, 32), pc=0) == "j      0x20"
    assert format_instr(I.jalr(0, 1, 0)) == "jr     ra"
