"""Property and unit tests for the two memory models: Bedrock2's partial
byte map and the machine's RAM-backed map (with DMA loans)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bedrock2.semantics import Memory, UndefinedBehavior
from repro.riscv.machine import MachineMemory, RiscvMachine, RiscvUB


# -- Bedrock2 Memory ----------------------------------------------------------------

def test_from_regions_and_owns():
    mem = Memory.from_regions([(0x100, b"\x01\x02"), (0x200, b"\x03")])
    assert mem.owns(0x100, 2)
    assert not mem.owns(0x100, 3)
    assert mem.owns(0x200)
    assert len(mem) == 3


def test_add_region_overlap_rejected():
    mem = Memory.from_regions([(0x100, bytes(4))])
    with pytest.raises(ValueError):
        mem.add_region(0x102, bytes(4))


def test_remove_region_returns_contents():
    mem = Memory()
    mem.add_region(0x100, b"\xaa\xbb")
    assert mem.remove_region(0x100, 2) == b"\xaa\xbb"
    assert len(mem) == 0
    with pytest.raises(UndefinedBehavior):
        mem.remove_region(0x100, 2)


def test_wraparound_addressing():
    # The address space is modular: a region near 2^32 wraps.
    mem = Memory.from_regions([(0xFFFFFFFE, bytes(4))])
    mem.store(0xFFFFFFFE, 4, 0xDDCCBBAA)
    assert mem.load(0x00000000, 1) == 0xCC
    assert mem.load(0xFFFFFFFE, 4) == 0xDDCCBBAA


@settings(max_examples=100, deadline=None)
@given(st.integers(0, 2**32 - 8), st.integers(0, 2**32 - 1),
       st.sampled_from([1, 2, 4]))
def test_store_load_roundtrip(base, value, size):
    mem = Memory.from_regions([(base, bytes(8))])
    mem.store(base, size, value)
    assert mem.load(base, size) == value & ((1 << (8 * size)) - 1)


@settings(max_examples=100, deadline=None)
@given(st.integers(0, 100), st.integers(0, 2**32 - 1))
def test_little_endian_byte_decomposition(offset, value):
    mem = Memory.from_regions([(0x1000, bytes(128))])
    mem.store(0x1000 + offset, 4, value)
    for i in range(4):
        assert mem.load(0x1000 + offset + i, 1) == (value >> (8 * i)) & 0xFF


def test_snapshot_is_independent():
    mem = Memory.from_regions([(0, b"\x01")])
    snap = mem.snapshot()
    mem.store(0, 1, 0xFF)
    assert snap[0] == 1


# -- MachineMemory -------------------------------------------------------------------

def test_machine_memory_ram_plus_sparse():
    mem = MachineMemory(ram_size=16, ram_base=0)
    mem.add_byte(0x100, 0xAB)  # sparse extra byte
    assert 0 in mem and 15 in mem and 16 not in mem
    assert 0x100 in mem
    mem[3] = 0x55
    assert mem[3] == 0x55
    assert mem[0x100] == 0xAB
    with pytest.raises(KeyError):
        mem[0x200] = 1


def test_machine_memory_masks_byte_values():
    mem = MachineMemory(ram_size=4)
    mem[0] = 0x1FF
    assert mem[0] == 0xFF


# -- DMA loans against the machine -----------------------------------------------------

def test_loan_blocks_partial_overlap():
    m = RiscvMachine.with_program(b"\x00" * 4, mem_size=1 << 12)
    m.loan_out(0x100, 16)
    # A word access straddling the loan boundary is UB too.
    with pytest.raises(RiscvUB):
        m.load(4, 0xFE + 2 - 4 + 0x100 - 0xFC)  # 0x100-adjacent straddle
    with pytest.raises(RiscvUB):
        m.load(4, 0xFE)  # crosses into the loan at 0x100
    assert m.load(4, 0xF8) is not None  # fully before: fine


def test_multiple_loans_tracked_independently():
    m = RiscvMachine.with_program(b"\x00" * 4, mem_size=1 << 12)
    m.loan_out(0x100, 8)
    m.loan_out(0x200, 8)
    m.loan_return(0x100, b"\x11" * 8)
    assert m.load(4, 0x100) == 0x11111111
    with pytest.raises(RiscvUB):
        m.load(4, 0x200)
    m.loan_return(0x200)
    m.load(4, 0x200)  # accessible again (contents unchanged)


def test_fetch_from_loaned_region_is_ub():
    from repro.riscv.encode import encode_program
    from repro.riscv import insts as I

    image = encode_program([I.jal(0, 0)])
    m = RiscvMachine.with_program(image, mem_size=1 << 12)
    m.loan_out(0, 4)
    with pytest.raises(RiscvUB):
        m.step()
