"""Compiler correctness as a forward-simulation test oracle (paper §5.3).

The paper proves: every successful source execution has a corresponding
machine execution with the same I/O trace and postcondition. Here the same
statement is checked differentially, per phase and end-to-end:

  source interpreter  ==  FlatImp interpreter  ==  RISC-V machine

on return values, I/O traces, and designated memory regions -- over a
hand-written corpus plus hypothesis-generated programs. The machine runs
with XAddrs tracking enabled, so these tests also confirm compiled code
never self-modifies (paper section 5.6).
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bedrock2 import ast_ as A
from repro.bedrock2.builder import (
    block, call, func, if_, interact, lit, load1, load2, load4, set_,
    stackalloc, store1, store2, store4, var, while_,
)
from repro.bedrock2.semantics import ExtHandler, Memory, UndefinedBehavior, run_function
from repro.compiler import compile_program, run_compiled
from repro.compiler.flatten import flatten_program
from repro.compiler.flatimp import run_flat_function


class ScriptedBus:
    """An MMIO bus yielding a deterministic value stream, so that the source
    interpreter and the machine observe the same external world."""

    def __init__(self, base=0x10024000, size=0x1000):
        self.base = base
        self.size = size
        self.value = 0
        self.writes = []

    def is_mmio(self, addr):
        return self.base <= addr < self.base + self.size

    def read(self, addr):
        self.value = (self.value * 7 + addr) & 0xFFFFFFFF
        return self.value

    def write(self, addr, value):
        self.writes.append((addr, value))


class ScriptedExt(ExtHandler):
    def __init__(self, bus):
        self.bus = bus

    def call(self, action, args, mem):
        if action == "MMIOREAD":
            return (self.bus.read(args[0]),)
        if action == "MMIOWRITE":
            self.bus.write(args[0], args[1])
            return ()
        raise UndefinedBehavior(action)


DATA_BASE = 0x4000  # a small owned data region inside machine memory


def check_compile(prog, fname="main", args=(), n_rets=1, data=b"",
                  uses_io=False):
    """Source-vs-FlatImp-vs-machine differential run."""
    # 1. Source semantics.
    src_bus = ScriptedBus()
    src_mem = Memory.from_regions([(DATA_BASE, data)]) if data else Memory()
    src_rets, src_state = run_function(prog, fname, args, mem=src_mem,
                                       ext=ScriptedExt(src_bus))
    # 2. FlatImp semantics (phase-1 differential).
    flat_bus = ScriptedBus()
    flat_mem = Memory.from_regions([(DATA_BASE, data)]) if data else Memory()
    flat_rets, _, flat_mem_out, flat_trace = run_flat_function(
        flatten_program(prog), fname, args, mem=flat_mem,
        ext=ScriptedExt(flat_bus))
    assert flat_rets == src_rets
    assert flat_trace == src_state.trace
    # 3. Machine semantics (whole-compiler differential).
    mach_bus = ScriptedBus()
    compiled = compile_program(prog, entry=fname)
    rets, machine = run_compiled(compiled, args, n_rets=n_rets,
                                 mmio_bus=mach_bus,
                                 extra_memory=[(DATA_BASE, data)] if data else ())
    assert rets == src_rets[:n_rets]
    assert machine.trace == [e.to_mmio_triple() for e in src_state.trace]
    if data:
        src_snapshot = src_state.mem.snapshot()
        for i in range(len(data)):
            assert machine.mem[DATA_BASE + i] == src_snapshot[DATA_BASE + i], \
                "memory mismatch at offset %d" % i
    return compiled, machine


# -- corpus ------------------------------------------------------------------------

def test_constant_return():
    prog = {"main": func("main", (), ("r",), set_("r", lit(42)))}
    check_compile(prog)


def test_arith_all_ops():
    ops = ["add", "sub", "mul", "mulhuu", "divu", "remu", "and", "or",
           "xor", "sru", "slu", "srs", "lts", "ltu", "eq"]
    body = [set_("r", lit(0))]
    for i, op in enumerate(ops):
        body.append(set_("t%d" % i,
                         type(var("x"))(A.EOp(op, var("x").node, var("y").node))))
        body.append(set_("r", var("r") + var("t%d" % i)))
    prog = {"main": func("main", ("x", "y"), ("r",), block(*body))}
    check_compile(prog, args=(0x12345678, 0x9ABCDEF0))
    check_compile(prog, args=(5, 0))        # division by zero path
    check_compile(prog, args=(0x80000000, 0xFFFFFFFF))


def test_large_literals():
    prog = {"main": func("main", (), ("r",), block(
        set_("a", lit(0xDEADBEEF)),
        set_("b", lit(0x800)),
        set_("c", lit(0x7FF)),
        set_("d", lit(0xFFFFF800)),
        set_("r", var("a") + var("b") + var("c") + var("d")),
    ))}
    check_compile(prog)


def test_if_else_chains():
    prog = {"main": func("main", ("x",), ("r",), block(
        if_(var("x") < 10,
            if_(var("x") < 5, set_("r", lit(1)), set_("r", lit(2))),
            if_(var("x") == 10, set_("r", lit(3)), set_("r", lit(4)))),
    ))}
    for x in (0, 5, 10, 11):
        check_compile(prog, args=(x,))


def test_loop_sum():
    prog = {"main": func("main", ("n",), ("s",), block(
        set_("s", lit(0)), set_("i", lit(0)),
        while_(var("i") < var("n"), block(
            set_("s", var("s") + var("i")),
            set_("i", var("i") + 1))),
    ))}
    check_compile(prog, args=(100,))


def test_nested_loops():
    prog = {"main": func("main", ("n",), ("s",), block(
        set_("s", lit(0)), set_("i", lit(0)),
        while_(var("i") < var("n"), block(
            set_("j", lit(0)),
            while_(var("j") < var("i"), block(
                set_("s", var("s") + 1),
                set_("j", var("j") + 1))),
            set_("i", var("i") + 1))),
    ))}
    check_compile(prog, args=(12,))


def test_memory_operations_all_sizes():
    prog = {"main": func("main", ("p",), ("r",), block(
        store4(var("p"), lit(0x11223344)),
        store2(var("p") + 4, lit(0xDEAD)),
        store1(var("p") + 6, lit(0x7F)),
        set_("r", load4(var("p")) + load2(var("p") + 4) + load1(var("p") + 6)),
    ))}
    check_compile(prog, args=(DATA_BASE,), data=bytes(16))


def test_byte_stores_do_not_clobber_neighbors():
    prog = {"main": func("main", ("p",), ("r",), block(
        store4(var("p"), lit(0xAAAAAAAA)),
        store1(var("p") + 1, lit(0xBB)),
        set_("r", load4(var("p"))),
    ))}
    check_compile(prog, args=(DATA_BASE,), data=bytes(8))


def test_stackalloc_compiles():
    prog = {"main": func("main", ("x",), ("r",), stackalloc("p", 16, block(
        store4(var("p"), var("x")),
        store4(var("p") + 4, var("x") * 2),
        set_("r", load4(var("p")) + load4(var("p") + 4)),
    )))}
    check_compile(prog, args=(21,))


def test_function_calls():
    prog = {
        "square": func("square", ("a",), ("b",), set_("b", var("a") * var("a"))),
        "sumsq": func("sumsq", ("a", "b"), ("c",), block(
            call(("x",), "square", var("a")),
            call(("y",), "square", var("b")),
            set_("c", var("x") + var("y")))),
        "main": func("main", ("n",), ("r",), call(("r",), "sumsq",
                                                  var("n"), var("n") + 1)),
    }
    check_compile(prog, args=(10,))


def test_multiple_return_values():
    prog = {
        "divmod": func("divmod", ("a", "b"), ("q", "r"), block(
            set_("q", var("a").udiv(var("b"))),
            set_("r", var("a").umod(var("b"))))),
        "main": func("main", ("a", "b"), ("x", "y"), call(
            ("x", "y"), "divmod", var("a"), var("b"))),
    }
    check_compile(prog, args=(37, 5), n_rets=2)


def test_mmio_io_sequence():
    prog = {"main": func("main", (), ("r",), block(
        interact(["a"], "MMIOREAD", lit(0x10024048)),
        interact(["b"], "MMIOREAD", lit(0x1002404C)),
        interact([], "MMIOWRITE", lit(0x10024050), var("a") ^ var("b")),
        set_("r", var("a") + var("b")),
    ))}
    check_compile(prog, uses_io=True)


def test_io_inside_loop():
    prog = {"main": func("main", ("n",), ("s",), block(
        set_("s", lit(0)), set_("i", lit(0)),
        while_(var("i") < var("n"), block(
            interact(["v"], "MMIOREAD", lit(0x10024048)),
            interact([], "MMIOWRITE", lit(0x1002404C), var("v")),
            set_("s", var("s") + var("v")),
            set_("i", var("i") + 1))),
    ))}
    check_compile(prog, args=(5,))


def test_register_pressure_spills():
    # 30 live variables forces spilling; all must survive.
    n = 30
    body = [set_("v%d" % i, lit(i * 3 + 1)) for i in range(n)]
    acc = var("v0")
    for i in range(1, n):
        acc = acc + var("v%d" % i)
    body.append(set_("r", acc))
    prog = {"main": func("main", (), ("r",), block(*body))}
    compiled, _ = check_compile(prog)
    expected = sum(i * 3 + 1 for i in range(n)) & 0xFFFFFFFF
    rets, _ = run_compiled(compiled, (), n_rets=1)
    assert rets == (expected,)


def test_spilled_vars_in_loop():
    n = 20
    setup = [set_("v%d" % i, lit(i)) for i in range(n)]
    prog = {"main": func("main", ("k",), ("r",), block(
        *setup,
        set_("r", lit(0)),
        while_(var("k"), block(
            *[set_("v%d" % i, var("v%d" % i) + 1) for i in range(n)],
            set_("k", var("k") - 1))),
        *[set_("r", var("r") + var("v%d" % i)) for i in range(n)],
    ))}
    check_compile(prog, args=(7,))


def test_deep_call_chain_stack_bound():
    prog = {"main": func("main", ("x",), ("r",), call(("r",), "f1", var("x")))}
    for i in range(1, 6):
        callee = "f%d" % (i + 1) if i < 5 else None
        if callee:
            body = block(call(("t",), callee, var("a") + 1), set_("b", var("t")))
        else:
            body = set_("b", var("a") + 1)
        prog["f%d" % i] = func("f%d" % i, ("a",), ("b",), body)
    compiled, _ = check_compile(prog, args=(0,))
    # Static bound covers main + 5 frames.
    assert compiled.stack_bound >= sum(
        compiled.frame_sizes["f%d" % i] for i in range(1, 6))


def test_recursion_rejected():
    from repro.compiler.codegen import CompileError
    prog = {"main": func("main", ("x",), ("r",),
                         call(("r",), "main", var("x")))}
    with pytest.raises(CompileError):
        compile_program(prog, entry="main")


def test_compiled_code_never_self_modifies():
    # XAddrs tracking is on in run_compiled's machine; a store into the
    # instruction range would fault on the next fetch. Run a program that
    # does plenty of stack traffic near (but legally apart from) the code.
    prog = {"main": func("main", ("n",), ("s",), block(
        set_("s", lit(0)), set_("i", lit(0)),
        while_(var("i") < var("n"), block(
            stackalloc("p", 8, block(
                store4(var("p"), var("i")),
                set_("s", var("s") + load4(var("p"))))),
            set_("i", var("i") + 1))),
    ))}
    _, machine = check_compile(prog, args=(50,))
    assert machine.instret > 100


# -- hypothesis: generated programs ------------------------------------------------

NAMES = ["a", "b", "c", "d"]


@st.composite
def gen_expr(draw, depth=2):
    if depth == 0 or draw(st.booleans()):
        if draw(st.booleans()):
            return lit(draw(st.integers(0, 2**32 - 1)))
        return var(draw(st.sampled_from(NAMES)))
    op = draw(st.sampled_from(list(A.BINOPS)))
    lhs = draw(gen_expr(depth=depth - 1))
    rhs = draw(gen_expr(depth=depth - 1))
    return type(lhs)(A.EOp(op, lhs.node, rhs.node))


@st.composite
def gen_cmd(draw, depth=2):
    kinds = ["set", "seq", "if", "io"] + (["while"] if depth > 0 else [])
    kind = draw(st.sampled_from(kinds))
    if kind == "set":
        return set_(draw(st.sampled_from(NAMES)), draw(gen_expr()))
    if kind == "seq":
        return block(draw(gen_cmd(depth=max(0, depth - 1))),
                     draw(gen_cmd(depth=max(0, depth - 1))))
    if kind == "if":
        return if_(draw(gen_expr()), draw(gen_cmd(depth=max(0, depth - 1))),
                   draw(gen_cmd(depth=max(0, depth - 1))))
    if kind == "while":
        # Per-depth counter name: nested loops cannot clobber an outer
        # counter, guaranteeing termination of generated programs.
        counter = "n%d" % depth
        body = draw(gen_cmd(depth=depth - 1))
        return block(set_(counter, lit(draw(st.integers(0, 4)))),
                     while_(var(counter),
                            block(body, set_(counter, var(counter) - 1))))
    return interact([draw(st.sampled_from(NAMES))], "MMIOREAD", lit(0x10024000))


@settings(max_examples=40, deadline=None)
@given(gen_cmd(depth=3),
       st.lists(st.integers(0, 2**32 - 1), min_size=4, max_size=4))
def test_generated_program_forward_simulation(cmd, args):
    prog = {"main": func("main", tuple(NAMES), ("a",), cmd)}
    check_compile(prog, args=tuple(args))
