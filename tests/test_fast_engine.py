"""Fast-path engine equivalence (tier-1).

The fast execution engine (`repro.riscv.fastpath`: decode cache + fused
basic blocks + flat RAM access) claims to be *bit-identical* to the
reference interpreter loop. This suite holds it to that claim:

* every checked-in ``fuzz-corpus/*.json`` reproducer runs on both
  engines with identical final machine state, MMIO trace and ``instret``;
* lockstep single-stepping agrees state-for-state on a branchy
  MMIO-touching program;
* self-modifying stores invalidate fused blocks and reproduce the
  reference's stale-instruction UB, message and all;
* ``until_pc`` / ``stop`` / ``max_steps`` boundaries agree;
* undefined behavior (misaligned access, invalid instruction, unowned
  fetch) raises the same exception text at the same point;
* the instrumented run loop counts opcodes identically through the
  decode-cache entries.
"""

import glob
import json
import os

import pytest

from repro import obs
from repro.compiler.pipeline import compile_program
from repro.fuzz.astjson import program_from_json
from repro.fuzz.oracle import _MEM_SIZE, SyntheticDevice
from repro.riscv.encode import encode_program
from repro.riscv.fastpath import machine_state_diff
from repro.riscv.insts import Instr
from repro.riscv.machine import RiscvMachine, RiscvUB

CORPUS_DIR = os.path.join(os.path.dirname(os.path.dirname(
    os.path.abspath(__file__))), "fuzz-corpus")
CORPUS_FILES = sorted(glob.glob(os.path.join(CORPUS_DIR, "*.json")))

_MAX_STEPS = 200_000


def _run_pair(image, max_steps=_MAX_STEPS, until_pc=None, mem_size=_MEM_SIZE,
              bus=True, **kwargs):
    """Run ``image`` on a reference and a fast machine; return both plus
    each engine's outcome (steps taken or the RiscvUB it raised)."""
    machines, outcomes = [], []
    for fast in (False, True):
        machine = RiscvMachine.with_program(
            image, base=0, pc=0, mem_size=mem_size,
            mmio_bus=SyntheticDevice() if bus else None, fast=fast, **kwargs)
        try:
            outcome = machine.run(max_steps, until_pc=until_pc)
        except RiscvUB as exc:
            outcome = "RiscvUB: %s" % exc
        machines.append(machine)
        outcomes.append(outcome)
    (ref, fast_m), (ref_out, fast_out) = machines, outcomes
    assert fast_out == ref_out
    assert machine_state_diff(ref, fast_m) is None
    return ref, fast_m, ref_out


@pytest.mark.parametrize("path", CORPUS_FILES,
                         ids=[os.path.basename(p) for p in CORPUS_FILES])
def test_corpus_reproducer_identical_on_both_engines(path):
    """Every corpus program: same final state, MMIO trace, instret."""
    with open(path) as fh:
        doc = json.load(fh)
    program = program_from_json(doc["program"])
    compiled = compile_program(program, stack_top=_MEM_SIZE)
    ref, fast, _ = _run_pair(compiled.image, until_pc=compiled.halt_pc)
    assert fast.trace == ref.trace
    assert fast.instret == ref.instret


def _branchy_image():
    """A loop with taken/untaken branches, loads/stores and an MMIO
    read+write per iteration (device at 0x40000000, scratch at 0x200)."""
    insts = [
        Instr("addi", rd=1, rs1=0, imm=0),        # i = 0
        Instr("addi", rd=2, rs1=0, imm=24),       # limit
        Instr("lui", rd=5, imm=0x40000),          # device base
        # loop:
        Instr("andi", rd=3, rs1=1, imm=1),
        Instr("beq", rs1=3, rs2=0, imm=12),       # skip MMIO on even i
        Instr("lw", rd=4, rs1=5, imm=0),          # MMIO read
        Instr("sw", rs1=5, rs2=4, imm=4),         # MMIO write
        Instr("sw", rs1=0, rs2=1, imm=0x200),     # scratch[0] = i
        Instr("lw", rd=6, rs1=0, imm=0x200),
        Instr("add", rd=7, rs1=7, rs2=6),         # checksum
        Instr("addi", rd=1, rs1=1, imm=1),
        Instr("bne", rs1=1, rs2=2, imm=-32),      # back to loop
        Instr("jal", rd=0, imm=0),                # halt: spin in place
    ]
    return encode_program(insts)


def test_lockstep_branchy_mmio_program():
    """Single-step the reference; advance the fast machine one step at a
    time (max_steps=1 exercises block truncation by budget); states must
    agree after every instruction."""
    image = _branchy_image()
    dev_ref, dev_fast = SyntheticDevice(), SyntheticDevice()
    ref = RiscvMachine.with_program(image, mem_size=1 << 12,
                                    mmio_bus=dev_ref, fast=False)
    fast = RiscvMachine.with_program(image, mem_size=1 << 12,
                                     mmio_bus=dev_fast, fast=True)
    for step in range(150):
        ref.step()
        assert fast.run(1) == 1
        diff = machine_state_diff(ref, fast)
        assert diff is None, "diverged after step %d: %s" % (step + 1, diff)


def test_whole_run_branchy_mmio_program():
    ref, fast, steps = _run_pair(_branchy_image(), max_steps=140,
                                 mem_size=1 << 12)
    assert steps == 140
    assert ref.trace  # the workload actually exercised MMIO


def test_self_modifying_store_hits_stale_instruction_ub():
    """Overwrite an instruction the block cache already fused: both
    engines must raise the stale-instruction UB with the same message."""
    insts = [
        Instr("addi", rd=1, rs1=0, imm=19),       # an addi word in x1
        Instr("sw", rs1=0, rs2=1, imm=16),        # clobber insts[4]
        Instr("addi", rd=2, rs1=0, imm=2),
        Instr("addi", rd=3, rs1=0, imm=3),
        Instr("addi", rd=4, rs1=0, imm=4),        # at 16: now stale
    ]
    image = encode_program(insts)
    # Warm the fast block cache over the whole straight line first, so
    # the store invalidates a block that is actually cached.
    warm = RiscvMachine.with_program(image, mem_size=1 << 12, fast=True,
                                     track_xaddrs=False)
    warm.run(5)
    assert warm.instret == 5

    ref, fast, outcome = _run_pair(image, max_steps=10, mem_size=1 << 12,
                                   bus=False)
    assert outcome == ("RiscvUB: fetch from non-executable address 0x10 "
                       "(stale-instruction discipline)")
    assert ref.instret == 4  # the store and both addis retired first


def test_store_into_current_block_aborts_fusion():
    """A store over the *next* instruction in the currently executing
    block: the fast engine must not keep replaying the fused copy."""
    insts = [
        Instr("addi", rd=1, rs1=0, imm=19),
        Instr("addi", rd=2, rs1=0, imm=2),
        Instr("sw", rs1=0, rs2=1, imm=16),        # clobber insts[4] below
        Instr("addi", rd=3, rs1=0, imm=3),        # still executes
        Instr("addi", rd=4, rs1=0, imm=4),        # fetch here must fault
    ]
    ref, fast, outcome = _run_pair(encode_program(insts), max_steps=10,
                                   mem_size=1 << 12, bus=False)
    assert "stale-instruction discipline" in outcome


def test_until_pc_mid_block_boundary():
    image = _branchy_image()
    for until in (4, 8, 12, 28):
        ref, fast, steps = _run_pair(image, max_steps=500, until_pc=until,
                                     mem_size=1 << 12)
        assert ref.pc == until and fast.pc == until


def test_stop_predicate_equivalence():
    image = _branchy_image()
    results = []
    for fast in (False, True):
        machine = RiscvMachine.with_program(image, mem_size=1 << 12,
                                            mmio_bus=SyntheticDevice(),
                                            fast=fast)
        steps = machine.run(500, stop=lambda m: m.get_register(1) == 7)
        results.append((steps, machine))
    (ref_steps, ref), (fast_steps, fast) = results
    assert fast_steps == ref_steps
    assert machine_state_diff(ref, fast) is None


@pytest.mark.parametrize("insts,needle", [
    # Misaligned load address (2 % 4 != 0).
    ([Instr("addi", rd=1, rs1=0, imm=2), Instr("lw", rd=2, rs1=1, imm=0)],
     "misaligned load at 0x2"),
    # Misaligned store.
    ([Instr("addi", rd=1, rs1=0, imm=6), Instr("sh", rs1=1, rs2=0, imm=1)],
     "misaligned store at 0x7"),
    # Misaligned jump target.
    ([Instr("jalr", rd=1, rs1=0, imm=6)], "misaligned jump target 0x6"),
    # Load far outside owned memory and MMIO.
    ([Instr("lui", rd=1, imm=0x80000), Instr("lw", rd=2, rs1=1, imm=0)],
     "load from unowned non-MMIO address 0x80000000"),
])
def test_ub_messages_identical(insts, needle):
    ref, fast, outcome = _run_pair(encode_program(insts), max_steps=10,
                                   mem_size=1 << 12, bus=False)
    assert isinstance(outcome, str) and needle in outcome


def test_invalid_instruction_identical():
    image = encode_program([Instr("addi", rd=1, rs1=0, imm=1)])
    image += b"\xff\xff\xff\xff"
    ref, fast, outcome = _run_pair(image, max_steps=10, mem_size=1 << 12,
                                   bus=False)
    assert outcome == ("RiscvUB: invalid instruction at pc=0x4: "
                       "invalid instruction word 0xffffffff")


def test_writes_to_x0_are_discarded():
    insts = [
        Instr("addi", rd=0, rs1=0, imm=123),
        Instr("lui", rd=0, imm=1),
        Instr("jal", rd=0, imm=8),                # also links to x0
        Instr("addi", rd=1, rs1=0, imm=99),       # skipped
        Instr("add", rd=2, rs1=0, rs2=0),
    ]
    ref, fast, _ = _run_pair(encode_program(insts), max_steps=4,
                             mem_size=1 << 12, bus=False)
    assert fast.get_register(0) == 0
    assert fast.get_register(1) == 0


def test_instrumented_opcode_counts_match_reference():
    """The decode-cache-entry counting must report exactly what the
    reference's per-step dict counting reports."""
    image = _branchy_image()

    def opcounts(fast):
        obs.reset()
        obs.enable(trace=True)
        try:
            machine = RiscvMachine.with_program(image, mem_size=1 << 12,
                                                mmio_bus=SyntheticDevice(),
                                                fast=fast)
            assert machine.run(100) == 100
            return obs.REGISTRY.snapshot("riscv.op.")
        finally:
            obs.disable()
            obs.reset()
    assert opcounts(True) == opcounts(False)


def test_decode_cache_shared_across_machines():
    """Same image on two fast machines: the second re-uses the first's
    per-engine block discovery path without interference (separate
    engines, shared `decode_cached` memo) and stays bit-identical."""
    image = _branchy_image()
    a = RiscvMachine.with_program(image, mem_size=1 << 12,
                                  mmio_bus=SyntheticDevice(), fast=True)
    b = RiscvMachine.with_program(image, mem_size=1 << 12,
                                  mmio_bus=SyntheticDevice(), fast=True)
    a.run(120)
    b.run(120)
    assert machine_state_diff(a, b) is None


def test_external_memory_poke_between_runs_is_observed():
    """Writing machine memory directly (test-style poke) must be seen by
    the next fast run: the poked word replaces a cached block's code."""
    insts = [
        Instr("addi", rd=1, rs1=0, imm=1),
        Instr("jal", rd=0, imm=-4),               # tight loop to pc=0
    ]
    image = encode_program(insts)
    nop = encode_program([Instr("addi", rd=0, rs1=0, imm=0)])
    results = []
    for fast in (False, True):
        machine = RiscvMachine.with_program(image, mem_size=1 << 12,
                                            fast=fast, track_xaddrs=False)
        machine.run(10)
        # Redirect the loop: turn the jal into a nop, fall into zeros.
        for i, byte in enumerate(nop):
            machine.mem[4 + i] = byte
        try:
            outcome = machine.run(10)
        except RiscvUB as exc:
            outcome = "RiscvUB: %s" % exc
        results.append((outcome, machine))
    (ref_out, ref), (fast_out, fast) = results
    assert fast_out == ref_out
    assert machine_state_diff(ref, fast) is None
