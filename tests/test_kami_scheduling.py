"""Schedule-robustness of the Kami semantics (paper section 5.7).

Kami's one-rule-at-a-time theorem says any concurrent hardware schedule is
equivalent to some sequence of single-rule steps; the Bluespec compiler is
free to pick schedules. These tests exercise our analogue: the processor's
observable MMIO trace is the same under

* the priority scheduler (one rule per step),
* the cycle scheduler (every rule once per cycle),
* randomized rule priorities,

because the design's FIFOs and guards serialize the data flow. This is
what licenses using the cycle scheduler for performance measurements and
the step scheduler for refinement checking interchangeably."""

import random

import pytest

from repro.kami.framework import ExternalWorld, System
from repro.kami.memory import make_memory_module
from repro.kami.pipeline_proc import make_pipelined_processor
from repro.platform.net import lightbulb_packet
from repro.riscv import insts as I
from repro.riscv.encode import encode_program
from repro.sw.program import compiled_lightbulb, make_platform


class ScriptedWorld(ExternalWorld):
    def __init__(self):
        self.state = 0
        self.writes = []

    def call(self, method, args):
        if method == "mmioRead":
            self.state = (self.state * 5 + args[0] + 1) & 0xFFFFFFFF
            return self.state
        if method == "mmioWrite":
            self.writes.append((args[0], args[1]))
            return None
        raise KeyError(method)


PROGRAM = encode_program([
    I.u_type("lui", 2, 0x10024),
    I.i_type("addi", 3, 0, 8),          # 8 rounds
    I.load("lw", 1, 2, 0),              # loop: read MMIO
    I.store("sw", 2, 1, 4),             #   echo it back
    I.i_type("addi", 3, 3, -1),
    I.branch("bne", 3, 0, -12),
    I.jal(0, 0),
])


def build(order=None, seed=None):
    mem = make_memory_module(PROGRAM, ram_words=1 << 10)
    proc = make_pipelined_processor(icache_words=32)
    system = System([proc, mem], ScriptedWorld(), snapshot_rollback=False)
    if seed is not None:
        names = [name for name, _, _ in system._rules]
        rng = random.Random(seed)
        rng.shuffle(names)
        by_name = {name: entry for entry in system._rules
                   for name in [entry[0]]}
        system._rules = [by_name[n] for n in names]
    return system


def run_steps(system, budget=20_000):
    system.run(budget)
    return system.mmio_trace()


def run_cycles(system, budget=20_000):
    system.run_cycles(budget)
    return system.mmio_trace()


def test_step_and_cycle_schedulers_agree():
    reference = run_steps(build())
    assert len(reference) == 16  # 8 reads + 8 writes
    assert run_cycles(build()) == reference


@pytest.mark.parametrize("seed", [11, 22, 33, 44, 55])
def test_randomized_priorities_preserve_trace(seed):
    reference = run_steps(build())
    shuffled = run_steps(build(seed=seed), budget=60_000)
    assert shuffled == reference


def test_randomized_priorities_on_lightbulb_refine_spec():
    """Full refinement under an adversarial rule order, on the real
    application binary with a packet in flight."""

    compiled = compiled_lightbulb(stack_top=1 << 16)

    def run_with(seed):
        plat = make_platform()
        mem = make_memory_module(compiled.image, ram_words=1 << 14)
        proc = make_pipelined_processor(
            icache_words=len(compiled.image) // 4 + 4)
        system = System([proc, mem], plat.kami_world(),
                        snapshot_rollback=False)
        if seed is not None:
            names = [name for name, _, _ in system._rules]
            random.Random(seed).shuffle(names)
            by_name = {entry[0]: entry for entry in system._rules}
            system._rules = [by_name[n] for n in names]
        injected = [False]

        def stop(s):
            if plat.lan.rx_enabled and not injected[0]:
                plat.lan.inject_frame(lightbulb_packet(True))
                injected[0] = True
            return plat.gpio.bulb_on

        system.run(400_000, stop=stop)
        assert plat.gpio.bulb_on
        return system.mmio_trace()

    reference = run_with(None)
    assert run_with(99) == reference


def test_cycle_scheduler_counts_fired_rules():
    system = build()
    fired = system.cycle()
    assert fired >= 1  # at least the I$ fill engine runs
