"""The event-loop invariant (paper section 5.2) and the no-out-of-memory
guarantee (section 5.3), observed at the machine level.

The paper verifies the ``init(); while(1) loop()`` idiom directly against
the RISC-V semantics via an invariant that holds at every loop-iteration
boundary, lifted with the eventually operator. Executably: every time the
compiled system re-enters ``lightbulb_loop``, the machine must be back in
the same canonical shape -- same stack pointer, same callee-saved
registers, stack usage within the static bound, program text untouched."""


from repro.platform.net import lightbulb_packet, truncated_packet
from repro.riscv.machine import RiscvMachine
from repro.sw.program import compiled_lightbulb, make_platform


def run_with_breakpoint(frames=(), iterations=8):
    compiled = compiled_lightbulb(stack_top=1 << 16)
    plat = make_platform()
    machine = RiscvMachine.with_program(compiled.image, mem_size=1 << 16,
                                        mmio_bus=plat.bus)
    loop_entry = compiled.symbols["func.lightbulb_loop"]
    snapshots = []
    injected = [0]
    frames = list(frames)
    min_sp = [1 << 16]
    steps = 0
    while len(snapshots) < iterations and steps < 5_000_000:
        machine.step()
        steps += 1
        min_sp[0] = min(min_sp[0], machine.get_register(2))
        if machine.pc == loop_entry:
            snapshots.append({
                "sp": machine.get_register(2),
                "callee_saved": tuple(machine.regs[8:10] + machine.regs[18:28]),
                "a0": machine.get_register(10),
            })
            if injected[0] < len(frames):
                plat.lan.inject_frame(frames[injected[0]])
                injected[0] += 1
    return compiled, machine, snapshots, min_sp[0]


def test_loop_entry_state_is_invariant():
    compiled, machine, snapshots, _ = run_with_breakpoint(
        frames=[lightbulb_packet(True), truncated_packet(),
                lightbulb_packet(False)])
    assert len(snapshots) >= 6
    reference = snapshots[0]
    for snap in snapshots[1:]:
        # The invariant: every iteration starts from the same sp and the
        # same buffer pointer (a0 = buf).
        assert snap["sp"] == reference["sp"]
        assert snap["a0"] == reference["a0"]


def test_stack_stays_within_static_bound():
    compiled, machine, snapshots, min_sp = run_with_breakpoint(
        frames=[lightbulb_packet(True)])
    used = compiled.stack_top - min_sp
    assert used <= compiled.stack_bound, \
        "runtime stack %d bytes exceeded static bound %d" % (
            used, compiled.stack_bound)
    # And the bound is not vacuous: real usage is a decent fraction.
    assert used >= compiled.frame_sizes["main"]


def test_program_text_never_written():
    compiled, machine, _, _ = run_with_breakpoint(
        frames=[lightbulb_packet(True)])
    # XAddrs complement: no store ever hit the program image.
    text = set(range(len(compiled.image)))
    assert not (machine.nonexec & text)


def test_memory_image_of_code_unchanged():
    compiled, machine, _, _ = run_with_breakpoint(frames=[lightbulb_packet(True)])
    current = bytes(machine.mem.ram[:len(compiled.image)])
    assert current == compiled.image
