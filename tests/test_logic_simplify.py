"""Property tests for the simplifier and interval analysis: both must be
*sound* abstractions of evaluation -- the analogue of proving rewrite
lemmas before registering them with a proof assistant's tactic."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.logic import terms as T
from repro.logic.intervals import bv_range, decide_bool
from repro.logic.simplify import linearize, normalize_bv, rebuild_linear, simplify

NAMES = ["x", "y", "z"]


@st.composite
def bv_terms(draw, depth=3, width=32):
    if depth == 0 or draw(st.booleans()):
        if draw(st.booleans()):
            return T.const(draw(st.integers(0, 2**width - 1)), width)
        return T.var(draw(st.sampled_from(NAMES)), width)
    op = draw(st.sampled_from(["add", "sub", "mul", "band", "bor", "bxor",
                               "shl", "lshr"]))
    lhs = draw(bv_terms(depth=depth - 1, width=width))
    rhs = draw(bv_terms(depth=depth - 1, width=width))
    return T.bv_binop(op, lhs, rhs)


@st.composite
def bool_terms(draw, depth=2):
    if depth == 0:
        op = draw(st.sampled_from(["eq", "ult", "slt"]))
        lhs = draw(bv_terms(depth=2))
        rhs = draw(bv_terms(depth=2))
        return {"eq": T.eq, "ult": T.ult, "slt": T.slt}[op](lhs, rhs)
    kind = draw(st.sampled_from(["leaf", "not", "and", "or"]))
    if kind == "leaf":
        return draw(bool_terms(depth=0))
    if kind == "not":
        return T.not_(draw(bool_terms(depth=depth - 1)))
    parts = [draw(bool_terms(depth=depth - 1)),
             draw(bool_terms(depth=depth - 1))]
    return (T.and_ if kind == "and" else T.or_)(*parts)


MODELS = st.fixed_dictionaries({n: st.integers(0, 2**32 - 1) for n in NAMES})


@settings(max_examples=200, deadline=None)
@given(bv_terms(), MODELS)
def test_normalize_bv_preserves_value(term, model):
    normalized = normalize_bv(term)
    assert T.evaluate(normalized, model) == T.evaluate(term, model)


@settings(max_examples=200, deadline=None)
@given(bv_terms(), MODELS)
def test_linearize_rebuild_preserves_value(term, model):
    rebuilt = rebuild_linear(linearize(term), term.width)
    assert T.evaluate(rebuilt, model) == T.evaluate(term, model)


@settings(max_examples=150, deadline=None)
@given(bool_terms(), MODELS)
def test_simplify_preserves_truth(formula, model):
    simplified = simplify(formula)
    assert T.evaluate(simplified, model) == T.evaluate(formula, model)


@settings(max_examples=200, deadline=None)
@given(bv_terms(), MODELS)
def test_interval_is_sound(term, model):
    lo, hi = bv_range(term)
    value = T.evaluate(term, model)
    assert lo <= value <= hi


@settings(max_examples=150, deadline=None)
@given(bool_terms(), MODELS)
def test_interval_decisions_are_sound(formula, model):
    decision = decide_bool(formula)
    if decision is not None:
        assert T.evaluate(formula, model) == decision


def test_linear_cancellation_examples():
    x, y = T.var("x"), T.var("y")
    cases = [
        (T.sub(T.add(x, y), y), x),
        (T.add(T.sub(x, y), y), x),
        (T.sub(T.add(T.add(x, T.const(8)), y), T.add(y, T.const(8))), x),
        (T.add(T.mul(x, T.const(3)), x), T.mul(x, T.const(4))),
    ]
    for term, expected in cases:
        assert normalize_bv(term) is normalize_bv(expected), term


def test_simplify_decides_address_equalities():
    base, i = T.var("base"), T.var("i")
    lhs = T.add(T.add(base, T.const(4)), T.shl(i, T.const(2)))
    rhs = T.add(T.shl(i, T.const(2)), T.add(T.const(4), base))
    assert simplify(T.eq(lhs, rhs)) is T.TRUE
    assert simplify(T.eq(lhs, T.add(rhs, T.const(4)))) is T.FALSE


def test_urem_bound_lemma():
    x, y = T.var("x"), T.var("y")
    assert T.ult(T.bv_binop("urem", x, y), y) is T.not_(T.eq(y, T.const(0)))
