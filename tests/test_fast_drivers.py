"""Tests for the unverified prototype drivers (repro.sw.fast): they must
be *functionally* correct (the baseline is fast, not broken) while
exhibiting exactly the differences §7.2.1 measures -- fewer MMIO
operations (SPI pipelining) and unbounded polling (no timeouts)."""

import pytest

from repro.bedrock2.builder import call, var
from repro.bedrock2.semantics import (
    Interpreter, Memory, OutOfFuel, State, to_mmio_triples,
)
from repro.platform.net import lightbulb_packet
from repro.sw import constants as C
from repro.sw.fast import fast_program
from repro.sw.program import lightbulb_program, make_platform


def service(program, frames, loops=3, plat=None):
    plat = plat or make_platform()
    mem = Memory.from_regions([(0x100000, bytes(C.RX_BUFFER_BYTES))])
    state = State(mem, {"buf": 0x100000})
    interp = Interpreter(program, ext=plat.ext_handler(), fuel=40_000_000)
    interp.exec_cmd(call(("e",), "lightbulb_init"), state)
    for frame in frames:
        plat.lan.inject_frame(frame)
    for _ in range(loops):
        interp.exec_cmd(call(("e",), "lightbulb_loop", var("buf")), state)
    return plat, to_mmio_triples(state.trace)


@pytest.mark.parametrize("pipelined,timeouts", [
    (True, False), (True, True), (False, False)])
def test_fast_variants_control_the_bulb(pipelined, timeouts):
    program = fast_program(pipelined_spi=pipelined, timeouts=timeouts)
    plat, _ = service(program, [lightbulb_packet(True)])
    assert plat.gpio.bulb_on
    plat, _ = service(program, [lightbulb_packet(True),
                                lightbulb_packet(False)])
    assert not plat.gpio.bulb_on


def test_pipelined_driver_uses_fewer_mmio_ops():
    verified_plat, verified_trace = service(lightbulb_program(),
                                            [lightbulb_packet(True)])
    proto_plat, proto_trace = service(fast_program(True, False),
                                      [lightbulb_packet(True)])
    assert verified_plat.gpio.bulb_on and proto_plat.gpio.bulb_on
    # The pipelined variant performs measurably fewer MMIO operations: the
    # 1.4x SPI factor's mechanism (§7.2.1).
    assert len(proto_trace) < len(verified_trace) * 0.9


def test_prototype_polls_forever_on_dead_device():
    """'The unverified prototype would happily poll forever' -- §7.2.1.
    With no timeout counters, a dead device hangs the prototype (observed
    as fuel exhaustion), whereas the verified driver returns an error."""
    program = fast_program(pipelined_spi=True, timeouts=False)
    plat = make_platform()
    plat.spi.rx_latency = 10**9
    mem = Memory()
    state = State(mem, {})
    interp = Interpreter(program, ext=plat.ext_handler(), fuel=300_000)
    with pytest.raises(OutOfFuel):
        interp.exec_cmd(call(("e",), "lightbulb_init"), state)
    # The verified driver, same scenario:
    plat2 = make_platform()
    plat2.spi.rx_latency = 10**9
    state2 = State(Memory(), {})
    interp2 = Interpreter(lightbulb_program(), ext=plat2.ext_handler(),
                          fuel=40_000_000)
    interp2.exec_cmd(call(("e",), "lightbulb_init"), state2)
    assert state2.locals["e"] != 0  # graceful timeout


def test_fast_drivers_not_covered_by_verified_spec():
    """The prototype's trace leaves goodHlTrace (its SPI discipline differs)
    -- which is precisely why the paper could not just ship the fast code
    under the same specification."""
    from repro.sw.specs import good_hl_trace

    _, trace = service(fast_program(True, False), [lightbulb_packet(True)])
    assert not good_hl_trace().matches(trace)
