"""Per-instruction tests of the ISA semantics, plus the state-level
processor-ISA consistency property (the paper's kstep1_sound, §5.8):
for *arbitrary* register/memory states and instructions, the Kami
combinational decode/execute logic must agree with the software-oriented
ISA semantics."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bedrock2 import word
from repro.kami.decexec import decode_signals, exec_instr, load_result
from repro.riscv import insts as I
from repro.riscv.encode import encode, encode_program
from repro.riscv.machine import RiscvMachine, RiscvUB


def machine_with(instr, regs=None, mem_words=None, pc=0):
    image = encode_program([instr])
    m = RiscvMachine.with_program(image, mem_size=1 << 12, pc=pc)
    # place the instruction at pc if pc != 0
    if pc:
        w = encode(instr)
        for i in range(4):
            m.mem[pc + i] = (w >> (8 * i)) & 0xFF
    for reg, value in (regs or {}).items():
        m.set_register(reg, value)
    for addr, value in (mem_words or {}).items():
        for i in range(4):
            m.mem[addr + i] = (value >> (8 * i)) & 0xFF
    return m


def step(instr, regs=None, mem_words=None):
    m = machine_with(instr, regs, mem_words)
    m.step()
    return m


# -- arithmetic edge cases ------------------------------------------------------------

def test_add_overflow_wraps():
    m = step(I.r_type("add", 3, 1, 2), {1: 0xFFFFFFFF, 2: 2})
    assert m.get_register(3) == 1


def test_sub_underflow_wraps():
    m = step(I.r_type("sub", 3, 1, 2), {1: 0, 2: 1})
    assert m.get_register(3) == 0xFFFFFFFF


def test_mulh_signed_corners():
    m = step(I.r_type("mulh", 3, 1, 2), {1: 0x80000000, 2: 0x80000000})
    assert m.get_register(3) == 0x40000000  # (-2^31)^2 >> 32
    m = step(I.r_type("mulh", 3, 1, 2), {1: 0xFFFFFFFF, 2: 2})
    assert m.get_register(3) == 0xFFFFFFFF  # -1 * 2 = -2 -> high = -1


def test_mulhu_unsigned():
    m = step(I.r_type("mulhu", 3, 1, 2), {1: 0xFFFFFFFF, 2: 0xFFFFFFFF})
    assert m.get_register(3) == 0xFFFFFFFE


def test_mulhsu_mixed():
    m = step(I.r_type("mulhsu", 3, 1, 2), {1: 0xFFFFFFFF, 2: 0xFFFFFFFF})
    # -1 * 0xFFFFFFFF = -0xFFFFFFFF -> high word = 0xFFFFFFFF
    assert m.get_register(3) == 0xFFFFFFFF


def test_div_riscv_conventions():
    assert step(I.r_type("div", 3, 1, 2), {1: 7, 2: 0}).get_register(3) \
        == 0xFFFFFFFF
    assert step(I.r_type("div", 3, 1, 2),
                {1: 0x80000000, 2: 0xFFFFFFFF}).get_register(3) == 0x80000000
    assert step(I.r_type("rem", 3, 1, 2), {1: 7, 2: 0}).get_register(3) == 7
    assert step(I.r_type("rem", 3, 1, 2),
                {1: 0x80000000, 2: 0xFFFFFFFF}).get_register(3) == 0


def test_div_rounds_toward_zero():
    m = step(I.r_type("div", 3, 1, 2), {1: word.wrap(-7), 2: 2})
    assert word.signed(m.get_register(3)) == -3
    m = step(I.r_type("rem", 3, 1, 2), {1: word.wrap(-7), 2: 2})
    assert word.signed(m.get_register(3)) == -1


def test_shifts_mask_to_5_bits():
    m = step(I.r_type("sll", 3, 1, 2), {1: 1, 2: 33})
    assert m.get_register(3) == 2
    m = step(I.r_type("sra", 3, 1, 2), {1: 0x80000000, 2: 31})
    assert m.get_register(3) == 0xFFFFFFFF


def test_slt_vs_sltu():
    assert step(I.r_type("slt", 3, 1, 2),
                {1: 0xFFFFFFFF, 2: 0}).get_register(3) == 1
    assert step(I.r_type("sltu", 3, 1, 2),
                {1: 0xFFFFFFFF, 2: 0}).get_register(3) == 0


def test_x0_is_hardwired_zero():
    m = step(I.i_type("addi", 0, 0, 5))
    assert m.get_register(0) == 0
    m = step(I.r_type("add", 3, 0, 0))
    assert m.get_register(3) == 0


# -- loads/stores ----------------------------------------------------------------------

def test_lb_sign_extends_lbu_does_not():
    mem = {0x100: 0x000000FF}
    assert step(I.load("lb", 3, 0, 0x100), {},
                mem).get_register(3) == 0xFFFFFFFF
    assert step(I.load("lbu", 3, 0, 0x100), {}, mem).get_register(3) == 0xFF


def test_lh_sign_extends_lhu_does_not():
    mem = {0x100: 0x00008000}
    assert step(I.load("lh", 3, 0, 0x100), {},
                mem).get_register(3) == 0xFFFF8000
    assert step(I.load("lhu", 3, 0, 0x100), {}, mem).get_register(3) == 0x8000


def test_sb_preserves_neighbors():
    m = step(I.store("sb", 1, 2, 1), {1: 0x100, 2: 0xAB},
             {0x100: 0x11223344})
    assert m.load(4, 0x100) == 0x1122AB44


def test_misaligned_load_is_ub():
    with pytest.raises(RiscvUB):
        step(I.load("lw", 3, 0, 0x101), {}, {0x100: 0})
    with pytest.raises(RiscvUB):
        step(I.load("lh", 3, 0, 0x101), {}, {0x100: 0})


def test_misaligned_jalr_target_lsb_cleared():
    # jalr clears bit 0 of the target (RISC-V spec).
    m = step(I.jalr(1, 2, 1), {2: 0x200})
    assert m.pc == 0x200  # 0x201 & ~1


def test_misaligned_branch_target_is_ub():
    with pytest.raises(RiscvUB):
        step(I.branch("beq", 0, 0, 2))  # pc+2: not 4-aligned


# -- control flow -------------------------------------------------------------------------

def test_branch_taken_and_not_taken():
    m = step(I.branch("bne", 1, 2, 8), {1: 1, 2: 1})
    assert m.pc == 4
    m = step(I.branch("bne", 1, 2, 8), {1: 1, 2: 2})
    assert m.pc == 8


def test_branch_signed_vs_unsigned():
    m = step(I.branch("blt", 1, 2, 8), {1: 0xFFFFFFFF, 2: 0})
    assert m.pc == 8  # -1 < 0 signed
    m = step(I.branch("bltu", 1, 2, 8), {1: 0xFFFFFFFF, 2: 0})
    assert m.pc == 4  # not unsigned


def test_jal_links_and_jumps():
    m = step(I.jal(1, 12))
    assert m.pc == 12
    assert m.get_register(1) == 4


def test_auipc_adds_to_pc():
    m = machine_with(I.u_type("auipc", 3, 1), pc=0)
    m.step()
    assert m.get_register(3) == 0x1000


# -- XAddrs discipline (§5.6) ----------------------------------------------------------------

def test_fetch_after_store_to_code_is_ub():
    # Store to the next instruction, then fall into it.
    insts = [
        I.u_type("lui", 1, 0),           # 0: x1 = 0
        I.store("sw", 0, 1, 8),          # 4: mem[8] = 0  (overwrites code!)
        I.i_type("addi", 2, 0, 1),       # 8: would execute next
    ]
    m = RiscvMachine.with_program(encode_program(insts), mem_size=1 << 12)
    m.step()
    m.step()
    with pytest.raises(RiscvUB):
        m.step()


def test_xaddrs_tracking_can_be_disabled():
    insts = [
        I.u_type("lui", 1, 0),
        I.store("sw", 0, 1, 8),
        I.i_type("addi", 2, 0, 1),
    ]
    m = RiscvMachine.with_program(encode_program(insts), mem_size=1 << 12,
                                  track_xaddrs=False)
    m.step()
    m.step()
    with pytest.raises(RiscvUB):
        m.step()  # overwritten with 0: invalid instruction, still UB
    # but the failure is decode, not the XAddrs fetch check
    m2 = RiscvMachine.with_program(encode_program(insts), mem_size=1 << 12)
    m2.step(), m2.step()
    with pytest.raises(RiscvUB, match="non-executable"):
        m2.step()


# -- state-level decexec vs ISA semantics (kstep1_sound, §5.8) ----------------------------------

regs_strategy = st.lists(st.integers(0, 2**32 - 1), min_size=32, max_size=32)

from tests.test_riscv_encode import instructions as any_instruction  # noqa: E402


@settings(max_examples=300, deadline=None)
@given(any_instruction(), regs_strategy,
       st.integers(0, 255))
def test_decexec_agrees_with_isa_semantics(instr, regs, mem_byte):
    """For an arbitrary instruction and register state, the processors'
    shared combinational logic and the ISA-level machine must compute the
    same next state -- registers, pc, memory effects, everything."""
    pc = 0x100
    # Constrain memory-op addresses into our small RAM to keep both sides
    # defined; the agreement claim covers the defined scenarios (§5.8's
    # theorem is likewise conditioned on no UB).
    if instr.name in ("lb", "lbu", "lh", "lhu", "lw", "sb", "sh", "sw"):
        regs = list(regs)
        regs[instr.rs1] = 0x400
        instr = I.Instr(instr.name, rd=instr.rd, rs1=instr.rs1,
                        rs2=instr.rs2, imm=(instr.imm % 64) * 4)

    machine = RiscvMachine(memory={a: (a * 17 + mem_byte) & 0xFF
                                   for a in range(0x400, 0x600)}, pc=pc,
                           track_xaddrs=False)
    w = encode(instr)
    for i in range(4):
        machine.mem.add_byte(pc + i, (w >> (8 * i)) & 0xFF)
    machine.nonexec = set()
    for reg in range(1, 32):
        machine.set_register(reg, regs[reg])

    # Side A: ISA machine.
    isa_ub = None
    try:
        machine.step()
    except RiscvUB as ub:
        isa_ub = ub

    # Side B: the shared combinational logic, on the same starting state.
    dec = decode_signals(w)
    rs1 = regs[dec.src1] if dec.src1 not in (None, 0) else 0
    rs2 = regs[dec.src2] if dec.src2 not in (None, 0) else 0
    res = exec_instr(dec, pc, rs1, rs2)

    if isa_ub is not None:
        # UB cases (misaligned access/target, unowned address): confirm the
        # combinational result explains it -- §5.8's theorem is likewise
        # conditioned on the software-oriented step being defined.
        out_of_ram = (dec.is_load or dec.is_store) and not (
            0x400 <= res.mem_addr and res.mem_addr + dec.mem_size <= 0x600)
        misaligned = (dec.is_load or dec.is_store) and \
            res.mem_addr % dec.mem_size != 0
        assert out_of_ram or misaligned or res.next_pc % 4 != 0
        return

    assert machine.pc == res.next_pc, instr
    if dec.is_store:
        stored = 0
        for i in range(dec.mem_size):
            stored |= machine.mem[res.mem_addr + i] << (8 * i)
        assert stored == res.store_value
    elif dec.is_load:
        raw = 0
        for i in range(dec.mem_size):
            raw |= ((0x400 <= res.mem_addr + i < 0x600)
                    and machine.mem[res.mem_addr + i] or 0) << (8 * i)
        # Compare through the machine's own register result:
        assert machine.get_register(dec.instr.rd) == load_result(dec, raw) \
            or dec.instr.rd == 0
    elif dec.writes_rd and dec.instr.rd != 0:
        assert machine.get_register(dec.instr.rd) == res.rd_value, instr
