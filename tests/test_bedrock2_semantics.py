"""Unit tests for the Bedrock2 big-step interpreter."""

import pytest

from repro.bedrock2.builder import (
    block, call, func, if_, interact, lit, load1, load2, load4, set_, skip,
    stackalloc, store2, store4, var, while_,
)
from repro.bedrock2.semantics import (
    ExtHandler,
    IOEvent,
    Memory,
    OutOfFuel,
    UndefinedBehavior,
    run_function,
    to_mmio_triples,
)


def run1(body, params=(), args=(), rets=("r",), **kwargs):
    prog = {"f": func("f", params, rets, body)}
    return run_function(prog, "f", args, **kwargs)


# -- expressions ---------------------------------------------------------------

def test_arith_wraps():
    rets, _ = run1(set_("r", lit(0xFFFFFFFF) + 1))
    assert rets == (0,)


def test_comparison_results_are_01():
    rets, _ = run1(block(set_("r", lit(3) < lit(4))))
    assert rets == (1,)
    rets, _ = run1(block(set_("r", lit(4) < lit(4))))
    assert rets == (0,)


def test_signed_comparison():
    rets, _ = run1(set_("r", lit(0xFFFFFFFF).slt(lit(0))))
    assert rets == (1,)  # -1 < 0 signed
    rets, _ = run1(set_("r", lit(0xFFFFFFFF) < lit(0)))
    assert rets == (0,)  # unsigned


def test_division_by_zero_is_defined():
    rets, _ = run1(set_("r", var("x").udiv(lit(0))), params=("x",), args=(7,))
    assert rets == (0xFFFFFFFF,)
    rets, _ = run1(set_("r", var("x").umod(lit(0))), params=("x",), args=(7,))
    assert rets == (7,)


def test_unbound_variable_is_ub():
    with pytest.raises(UndefinedBehavior):
        run1(set_("r", var("nope")))


# -- memory ----------------------------------------------------------------------

def test_load_store_roundtrip():
    mem = Memory.from_regions([(0x100, bytes(8))])
    rets, _ = run1(block(store4(lit(0x100), lit(0xAABBCCDD)),
                         set_("r", load4(lit(0x100)))), mem=mem)
    assert rets == (0xAABBCCDD,)


def test_little_endian_byte_order():
    mem = Memory.from_regions([(0x100, bytes(8))])
    rets, _ = run1(block(store4(lit(0x100), lit(0x11223344)),
                         set_("r", load1(lit(0x100)))), mem=mem)
    assert rets == (0x44,)


def test_load2_zero_extends():
    mem = Memory.from_regions([(0x100, b"\xff\xff\x00\x00")])
    rets, _ = run1(set_("r", load2(lit(0x100))), mem=mem)
    assert rets == (0xFFFF,)


def test_out_of_bounds_access_is_ub():
    with pytest.raises(UndefinedBehavior):
        run1(set_("r", load4(lit(0x100))))
    mem = Memory.from_regions([(0x100, bytes(2))])
    with pytest.raises(UndefinedBehavior):
        run1(set_("r", load4(lit(0x100))), mem=mem)


def test_misaligned_access_is_ub():
    mem = Memory.from_regions([(0x100, bytes(16))])
    with pytest.raises(UndefinedBehavior):
        run1(set_("r", load4(lit(0x101))), mem=mem)
    with pytest.raises(UndefinedBehavior):
        run1(block(store2(lit(0x103), lit(1)), set_("r", lit(0))), mem=mem)


def test_stackalloc_provides_memory_then_reclaims():
    body = block(
        stackalloc("p", 8, block(
            store4(var("p"), lit(42)),
            set_("r", load4(var("p"))),
        )),
        set_("dead", var("p")),  # binding survives; memory does not
    )
    rets, state = run1(body)
    assert rets == (42,)
    assert len(state.mem) == 0


def test_stackalloc_memory_gone_after_block():
    body = block(
        stackalloc("p", 8, skip()),
        set_("r", load4(var("p"))),  # use-after-free
    )
    with pytest.raises(UndefinedBehavior):
        run1(body)


def test_stackalloc_unaligned_size_rejected():
    with pytest.raises(UndefinedBehavior):
        run1(stackalloc("p", 3, set_("r", lit(0))))


# -- control flow ------------------------------------------------------------------

def test_if_branches():
    body = if_(var("x"), set_("r", lit(1)), set_("r", lit(2)))
    assert run1(body, params=("x",), args=(5,))[0] == (1,)
    assert run1(body, params=("x",), args=(0,))[0] == (2,)


def test_while_loop_counts():
    body = block(
        set_("r", lit(0)),
        while_(var("x"), block(set_("r", var("r") + 2),
                               set_("x", var("x") - 1))),
    )
    assert run1(body, params=("x",), args=(10,))[0] == (20,)


def test_infinite_loop_exhausts_fuel():
    with pytest.raises(OutOfFuel):
        run1(block(set_("r", lit(0)), while_(lit(1), skip())), fuel=1000)


def test_function_call_with_multiple_returns():
    prog = {
        "divmod": func("divmod", ("a", "b"), ("q", "r"), block(
            set_("q", var("a").udiv(var("b"))),
            set_("r", var("a").umod(var("b"))),
        )),
        "main": func("main", (), ("x", "y"), block(
            call(("x", "y"), "divmod", lit(17), lit(5)),
        )),
    }
    rets, _ = run_function(prog, "main", ())
    assert rets == (3, 2)


def test_callee_locals_do_not_leak():
    prog = {
        "leaky": func("leaky", (), ("r",), block(set_("secret", lit(9)),
                                                 set_("r", lit(1)))),
        "main": func("main", (), ("r",), block(
            call(("t",), "leaky"),
            set_("r", var("secret")),  # must be UB: not in caller scope
        )),
    }
    with pytest.raises(UndefinedBehavior):
        run_function(prog, "main", ())


def test_call_unknown_function_is_ub():
    with pytest.raises(UndefinedBehavior):
        run1(call(("r",), "ghost"))


# -- external calls ------------------------------------------------------------------

class RecordingExt(ExtHandler):
    def __init__(self):
        self.next_value = 7

    def call(self, action, args, mem):
        if action == "MMIOREAD":
            return (self.next_value,)
        if action == "MMIOWRITE":
            return ()
        raise UndefinedBehavior(action)


def test_interact_records_trace():
    body = block(
        interact(["v"], "MMIOREAD", lit(0x10024048)),
        interact([], "MMIOWRITE", lit(0x1002404C), var("v") + 1),
        set_("r", var("v")),
    )
    rets, state = run1(body, ext=RecordingExt())
    assert rets == (7,)
    assert state.trace == [
        IOEvent("MMIOREAD", (0x10024048,), (7,)),
        IOEvent("MMIOWRITE", (0x1002404C, 8), ()),
    ]
    assert to_mmio_triples(state.trace) == [
        ("ld", 0x10024048, 7), ("st", 0x1002404C, 8)]


def test_interact_without_handler_is_ub():
    with pytest.raises(UndefinedBehavior):
        run1(interact(["r"], "MMIOREAD", lit(0)))


def test_stackalloc_address_is_internal_nondeterminism():
    """Paper §4/§5.3: the stack-allocation address is internally
    nondeterministic -- well-defined programs cannot observe it. Running
    with different allocators must give identical results and traces
    (this is the freedom the compiler exploits when it places buffers in
    stack frames instead of at the interpreter's addresses)."""
    body = block(
        stackalloc("p", 16, block(
            store4(var("p"), var("x")),
            store4(var("p") + 8, load4(var("p")) * 3),
            set_("r", load4(var("p") + 8)),
        )),
    )
    prog = {"f": func("f", ("x",), ("r",), body)}
    runs = [run_function(prog, "f", [7], stack_base=base)[0]
            for base in (0x8000_0000, 0x1000, 0xFFFF_0000)]
    assert runs[0] == runs[1] == runs[2] == (21,)


def test_program_observing_stackalloc_address_differs_by_allocator():
    """The flip side: a program that leaks the pointer value genuinely
    depends on the nondeterministic choice -- such programs fall outside
    what the compiler promises to preserve."""
    prog = {"f": func("f", (), ("r",), stackalloc("p", 8, set_("r", var("p"))))}
    a = run_function(prog, "f", [], stack_base=0x8000_0000)[0]
    b = run_function(prog, "f", [], stack_base=0x1000)[0]
    assert a != b
