"""Translation validation of register allocation (repro.compiler.regcheck):
the dynamic shadow checker must accept correct allocations and catch
planted clobbers."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bedrock2 import ast_ as A
from repro.bedrock2.builder import (
    block, call, func, if_, interact, lit, set_, var, while_,
)
from repro.bedrock2.semantics import ExtHandler, UndefinedBehavior
from repro.compiler.flatten import flatten_program
from repro.compiler.opt import allocate_program_linear_scan, optimize
from repro.compiler.regcheck import (
    check_allocation_static, validate_allocation_dynamic,
)


class Ext(ExtHandler):
    def __init__(self):
        self.n = 0

    def call(self, action, args, mem):
        if action == "MMIOREAD":
            self.n = (self.n * 3 + 7) & 0xFFFFFFFF
            return (self.n,)
        if action == "MMIOWRITE":
            return ()
        raise UndefinedBehavior(action)


def mappings_for(flat):
    _, allocations = allocate_program_linear_scan(flat)
    return {name: alloc.mapping for name, alloc in allocations.items()}


def validate(prog, entry, args):
    flat = optimize(flatten_program(prog))
    return validate_allocation_dynamic(flat, mappings_for(flat), entry, args,
                                       ext=Ext())


def test_correct_allocation_validates():
    prog = {"main": func("main", ("n",), ("s",), block(
        set_("s", lit(0)), set_("i", lit(0)),
        while_(var("i") < var("n"), block(
            interact(["v"], "MMIOREAD", lit(0x10024048)),
            set_("s", var("s") + var("v")),
            set_("i", var("i") + 1)))))}
    assert validate(prog, "main", [10]) == []


def test_lightbulb_allocation_validates():
    from repro.sw.program import lightbulb_program, make_platform

    plat = make_platform()
    flat = optimize(flatten_program(lightbulb_program()))
    violations = validate_allocation_dynamic(
        flat, mappings_for(flat), "lightbulb_service", [2],
        ext=plat.ext_handler(),
        mem=_buf_memory())
    assert violations == []


def _buf_memory():
    from repro.bedrock2.semantics import Memory

    return Memory()


def test_planted_clobber_detected():
    # Build a mapping that wrongly merges an accumulator with a temp that
    # is redefined every iteration: the shadow checker must object.
    prog = {"main": func("main", ("n",), ("s",), block(
        set_("s", lit(0)), set_("i", lit(0)),
        while_(var("i") < var("n"), block(
            set_("t", var("i") * 2),
            set_("s", var("s") + var("t")),
            set_("i", var("i") + 1)))))}
    flat = flatten_program(prog)
    # Identity mapping except s and t share a register.
    from repro.compiler.flatimp import stmt_vars

    names = stmt_vars(flat["main"].body) | set(flat["main"].params)
    mapping = {}
    regs = iter(range(5, 30))
    for name in sorted(names):
        mapping[name] = "x%d" % next(regs)
    mapping["t"] = mapping["s"]  # the planted bug
    violations = validate_allocation_dynamic(flat, {"main": mapping},
                                             "main", [3], ext=Ext())
    assert violations
    assert any("'s'" in v or "'t'" in v for v in violations)


def test_static_review_list_flags_planted_overlap():
    prog = {"main": func("main", ("n",), ("s",), block(
        set_("s", lit(0)), set_("i", lit(0)),
        while_(var("i") < var("n"), block(
            set_("s", var("s") + 1),
            set_("i", var("i") + 1)))))}
    flat = flatten_program(prog)
    mapping = {"n": "x5", "s": "x6", "i": "x6"}  # s and i overlap in-loop
    fn = flat["main"]
    mapping.update({v: "x%d" % (18 + k) for k, v in
                    enumerate(sorted(set(_all_vars(fn)) - set(mapping)))})
    warnings = check_allocation_static(fn, mapping)
    assert warnings


def _all_vars(fn):
    from repro.compiler.flatimp import stmt_vars

    return stmt_vars(fn.body) | set(fn.params) | set(fn.rets)


NAMES = ["a", "b", "c"]


@st.composite
def gen_cmd(draw, depth=2):
    kinds = ["set", "seq", "if", "io"] + (["while"] if depth > 0 else [])
    kind = draw(st.sampled_from(kinds))
    if kind == "set":
        def expr(d=2):
            if d == 0 or draw(st.booleans()):
                if draw(st.booleans()):
                    return lit(draw(st.integers(0, 100)))
                return var(draw(st.sampled_from(NAMES)))
            op = draw(st.sampled_from(["add", "sub", "mul", "xor", "ltu"]))
            return type(var("a"))(A.EOp(op, expr(d - 1).node, expr(d - 1).node))
        return set_(draw(st.sampled_from(NAMES)), expr())
    if kind == "seq":
        return block(draw(gen_cmd(depth=max(0, depth - 1))),
                     draw(gen_cmd(depth=max(0, depth - 1))))
    if kind == "if":
        return if_(var(draw(st.sampled_from(NAMES))),
                   draw(gen_cmd(depth=max(0, depth - 1))),
                   draw(gen_cmd(depth=max(0, depth - 1))))
    if kind == "while":
        counter = "k%d" % depth
        body = draw(gen_cmd(depth=depth - 1))
        return block(set_(counter, lit(draw(st.integers(0, 4)))),
                     while_(var(counter),
                            block(body, set_(counter, var(counter) - 1))))
    return interact([draw(st.sampled_from(NAMES))], "MMIOREAD",
                    lit(0x10024000))


@settings(max_examples=50, deadline=None)
@given(gen_cmd(depth=3),
       st.lists(st.integers(0, 2**32 - 1), min_size=3, max_size=3))
def test_generated_allocations_validate(cmd, args):
    """The allocator never produces a clobber the shadow checker can see --
    translation validation over hypothesis-generated programs."""
    prog = {"main": func("main", tuple(NAMES), ("a",), cmd)}
    assert validate(prog, "main", tuple(args)) == []
