"""Agreement of big-step (CPS-style) and small-step semantics (paper §5.8).

The paper proves its CPS semantics equivalent to traditional small-step
semantics so the top-level theorem does not rest on a non-standard
formalism. Here the same statement is checked differentially: both
interpreters run the same programs (hand-written corpus + hypothesis-
generated) and must agree on results, final memory, traces, and on
*whether* the program has undefined behavior.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bedrock2 import ast_ as A
from repro.bedrock2.builder import (
    block, call, func, if_, interact, lit, load4, set_, stackalloc, store4,
    var, while_,
)
from repro.bedrock2.semantics import (
    ExtHandler, Memory, UndefinedBehavior, run_function,
)
from repro.bedrock2.smallstep import run_function_smallstep


class CountingExt(ExtHandler):
    """Deterministic external world so both semantics see identical inputs."""

    def __init__(self):
        self.counter = 0

    def call(self, action, args, mem):
        if action == "MMIOREAD":
            self.counter += 13
            return (self.counter & 0xFFFFFFFF,)
        if action == "MMIOWRITE":
            return ()
        raise UndefinedBehavior(action)


def assert_agree(prog, fname, args, mem_bytes=None):
    def fresh_mem():
        if mem_bytes is None:
            return Memory()
        return Memory.from_regions([(0x100, bytes(mem_bytes))])

    big_exc = small_exc = None
    big = small = None
    try:
        big = run_function(prog, fname, args, mem=fresh_mem(),
                           ext=CountingExt(), fuel=200_000)
    except UndefinedBehavior as e:
        big_exc = e
    try:
        small = run_function_smallstep(prog, fname, args, mem=fresh_mem(),
                                       ext=CountingExt(), max_steps=200_000)
    except UndefinedBehavior as e:
        small_exc = e
    assert (big_exc is None) == (small_exc is None), (big_exc, small_exc)
    if big_exc is None:
        big_rets, big_state = big
        small_rets, small_state = small
        assert big_rets == small_rets
        assert big_state.trace == small_state.trace
        assert big_state.mem.snapshot() == small_state.mem.snapshot()


CORPUS = [
    ("arith", block(set_("r", (var("x") + 3) * var("x") - 1)), ("x",), (7,)),
    ("if", if_(var("x") < 5, set_("r", lit(1)), set_("r", lit(0))),
     ("x",), (4,)),
    ("loop", block(set_("r", lit(0)),
                   while_(var("x"), block(set_("r", var("r") + var("x")),
                                          set_("x", var("x") - 1)))),
     ("x",), (9,)),
    ("mem", block(store4(lit(0x100), var("x")),
                  set_("r", load4(lit(0x100)) + 1)), ("x",), (41,)),
    ("stack", stackalloc("p", 8, block(store4(var("p"), var("x")),
                                       set_("r", load4(var("p"))))),
     ("x",), (5,)),
    ("io", block(interact(["a"], "MMIOREAD", lit(0x10024000)),
                 interact(["b"], "MMIOREAD", lit(0x10024000)),
                 interact([], "MMIOWRITE", lit(0x10024004), var("a")),
                 set_("r", var("a") + var("b"))), (), ()),
    ("ub_load", set_("r", load4(lit(0x5000))), (), ()),
    ("ub_misaligned", block(store4(lit(0x101), lit(1)), set_("r", lit(0))),
     (), ()),
    ("ub_unbound", set_("r", var("ghost")), (), ()),
]


@pytest.mark.parametrize("name,body,params,args",
                         CORPUS, ids=[c[0] for c in CORPUS])
def test_corpus_agreement(name, body, params, args):
    prog = {"f": func("f", params, ("r",), body)}
    assert_agree(prog, "f", args, mem_bytes=16)


def test_call_agreement():
    prog = {
        "inc": func("inc", ("a",), ("b",), set_("b", var("a") + 1)),
        "main": func("main", ("x",), ("r",), block(
            call(("t",), "inc", var("x")),
            call(("r",), "inc", var("t")),
        )),
    }
    assert_agree(prog, "main", (10,))


def test_nested_stackalloc_agreement():
    prog = {"f": func("f", (), ("r",), stackalloc("p", 8, stackalloc(
        "q", 8, block(store4(var("p"), lit(1)), store4(var("q"), lit(2)),
                      set_("r", load4(var("p")) + load4(var("q")))))))}
    assert_agree(prog, "f", ())


# -- hypothesis-generated programs ---------------------------------------------

NAMES = ["a", "b", "c"]


@st.composite
def exprs(draw, depth=2):
    if depth == 0 or draw(st.booleans()):
        if draw(st.booleans()):
            return lit(draw(st.integers(0, 50)))
        return var(draw(st.sampled_from(NAMES)))
    op = draw(st.sampled_from(["add", "sub", "mul", "and", "or", "xor",
                               "ltu", "eq"]))
    lhs = draw(exprs(depth=depth - 1))
    rhs = draw(exprs(depth=depth - 1))
    return type(lhs)(A.EOp(op, lhs.node, rhs.node))


@st.composite
def cmds(draw, depth=2):
    kind = draw(st.sampled_from(
        ["set", "seq", "if", "while", "io"] if depth > 0 else ["set", "io"]))
    if kind == "set":
        return set_(draw(st.sampled_from(NAMES)), draw(exprs()))
    if kind == "seq":
        return block(draw(cmds(depth=depth - 1)), draw(cmds(depth=depth - 1)))
    if kind == "if":
        return if_(draw(exprs()), draw(cmds(depth=depth - 1)),
                   draw(cmds(depth=depth - 1)))
    if kind == "while":
        # Bounded loop: a per-depth counter name guarantees termination even
        # when loops nest (inner loops cannot clobber an outer counter).
        counter = "n%d" % depth
        body = draw(cmds(depth=depth - 1))
        return block(set_(counter, lit(draw(st.integers(0, 5)))),
                     while_(var(counter),
                            block(body, set_(counter, var(counter) - 1))))
    return interact([draw(st.sampled_from(NAMES))], "MMIOREAD",
                    lit(0x10024000))


@settings(max_examples=60, deadline=None)
@given(cmds(depth=3), st.lists(st.integers(0, 2**32 - 1), min_size=3, max_size=3))
def test_random_program_agreement(cmd, args):
    prog = {"f": func("f", tuple(NAMES), ("a",), cmd)}
    assert_agree(prog, "f", tuple(args))
