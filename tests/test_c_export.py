"""C export (paper Figure 1): compile the generated C with the host
compiler and run it differentially against the Bedrock2 interpreter --
the same cross-toolchain compatibility exercise the paper used to run the
verified sources on the commercial FE310."""

import shutil
import subprocess
import tempfile
import os

import pytest

from repro.bedrock2.builder import (
    block, call, func, if_, interact, lit, load1, load4, set_, stackalloc,
    store1, store4, var, while_,
)
from repro.bedrock2.c_export import export_expr, export_program
from repro.bedrock2.semantics import (
    ExtHandler, UndefinedBehavior, run_function,
)

CC = shutil.which("gcc") or shutil.which("cc")

needs_cc = pytest.mark.skipif(CC is None, reason="no C compiler available")


HARNESS = r"""
#include <stdio.h>
#include <stdint.h>

uint32_t %(entry)s(%(params)s);

static uint32_t mmio_state = 0;
uint32_t MMIOREAD(uint32_t addr) {
  mmio_state = mmio_state * 7u + addr;
  printf("ld %%u %%u\n", addr, mmio_state);
  return mmio_state;
}
void MMIOWRITE(uint32_t addr, uint32_t value) {
  printf("st %%u %%u\n", addr, value);
}

int main(int argc, char **argv) {
  uint32_t args[8] = {0};
  for (int i = 1; i < argc && i <= 8; i++)
    sscanf(argv[i], "%%u", &args[i - 1]);
  uint32_t r = %(entry)s(%(call_args)s);
  printf("ret %%u\n", r);
  return 0;
}
"""


class ScriptedExt(ExtHandler):
    """Mirror of the C harness's MMIO stubs."""

    def __init__(self):
        self.state = 0
        self.log = []

    def call(self, action, args, mem):
        if action == "MMIOREAD":
            self.state = (self.state * 7 + args[0]) & 0xFFFFFFFF
            self.log.append(("ld", args[0], self.state))
            return (self.state,)
        if action == "MMIOWRITE":
            self.log.append(("st", args[0], args[1]))
            return ()
        raise UndefinedBehavior(action)


def run_exported(program, entry, args):
    """Compile the exported C plus a harness and run it natively."""
    fn = program[entry]
    n = len(fn.params)
    harness = HARNESS % {
        "entry": entry,
        "params": ", ".join(["uint32_t"] * n) or "void",
        "call_args": ", ".join("args[%d]" % i for i in range(n)),
    }
    source = export_program(program) + harness
    with tempfile.TemporaryDirectory() as tmp:
        c_path = os.path.join(tmp, "prog.c")
        exe = os.path.join(tmp, "prog")
        with open(c_path, "w") as handle:
            handle.write(source)
        subprocess.run([CC, "-O1", "-o", exe, c_path], check=True,
                       capture_output=True)
        out = subprocess.run([exe] + [str(a) for a in args], check=True,
                             capture_output=True, text=True).stdout
    events = []
    ret = None
    for line in out.splitlines():
        parts = line.split()
        if parts[0] == "ret":
            ret = int(parts[1])
        else:
            events.append((parts[0], int(parts[1]), int(parts[2])))
    return ret, events


def check_against_interpreter(program, entry, args):
    ext = ScriptedExt()
    rets, _ = run_function(program, entry, args, ext=ext)
    c_ret, c_events = run_exported(program, entry, args)
    assert c_ret == rets[0], (c_ret, rets)
    assert c_events == ext.log


# -- expression export --------------------------------------------------------------

def test_export_expr_shapes():
    assert export_expr(lit(5).node) == "5u"
    assert export_expr((var("a") + var("b")).node) == "(a + b)"
    assert export_expr(var("a").udiv(var("b")).node) == "br_divu(a, b)"
    assert export_expr(load4(var("p")).node) == "br_load4(p)"


def test_export_program_contains_helpers_and_protos():
    prog = {"f": func("f", ("x",), ("r",), set_("r", var("x").udiv(lit(3))))}
    source = export_program(prog)
    assert "br_divu" in source
    assert "uint32_t f(uint32_t x);" in source


# -- native differential tests --------------------------------------------------------

@needs_cc
def test_arith_matches_native():
    prog = {"f": func("f", ("x", "y"), ("r",), block(
        set_("a", var("x") * var("y") + 7),
        set_("b", var("a").udiv(var("y"))),
        set_("c", var("a").umod(lit(0))),     # division-by-zero convention!
        set_("d", var("x") >> 33),            # shift masking
        set_("e", var("x").sar(31)),
        set_("r", var("a") ^ var("b") ^ var("c") ^ var("d") ^ var("e"))))}
    check_against_interpreter(prog, "f", [0xDEADBEEF, 12345])
    check_against_interpreter(prog, "f", [5, 0])


@needs_cc
def test_control_flow_matches_native():
    prog = {"f": func("f", ("n",), ("s",), block(
        set_("s", lit(0)), set_("i", lit(0)),
        while_(var("i") < var("n"), block(
            if_(var("i") & 1, set_("s", var("s") + var("i")),
                set_("s", var("s") ^ var("i"))),
            set_("i", var("i") + 1)))))}
    check_against_interpreter(prog, "f", [25])


@needs_cc
def test_calls_and_multiple_returns_match_native():
    prog = {
        "divmod": func("divmod", ("a", "b"), ("q", "r"), block(
            set_("q", var("a").udiv(var("b"))),
            set_("r", var("a").umod(var("b"))))),
        "f": func("f", ("a", "b"), ("out",), block(
            call(("q", "rem"), "divmod", var("a"), var("b")),
            set_("out", var("q") * 1000 + var("rem")))),
    }
    check_against_interpreter(prog, "f", [12345, 67])


@needs_cc
def test_stackalloc_and_memory_match_native():
    prog = {"f": func("f", ("x",), ("r",), stackalloc("p", 16, block(
        store4(var("p"), var("x")),
        store1(var("p") + 5, lit(0xAB)),
        store4(var("p") + 8, load4(var("p")) + 1),
        set_("r", load4(var("p") + 8) + load1(var("p") + 5)))))}
    check_against_interpreter(prog, "f", [41])


@needs_cc
def test_mmio_trace_matches_native():
    prog = {"f": func("f", ("n",), ("s",), block(
        set_("s", lit(0)), set_("i", lit(0)),
        while_(var("i") < var("n"), block(
            interact(["v"], "MMIOREAD", lit(1000) + var("i")),
            interact([], "MMIOWRITE", lit(2000), var("v") ^ var("s")),
            set_("s", var("s") + var("v")),
            set_("i", var("i") + 1)))))}
    check_against_interpreter(prog, "f", [5])


@needs_cc
def test_full_lightbulb_export_compiles():
    """The whole three-file lightbulb program exports to C that an
    off-the-shelf compiler accepts (the paper's Figure 1 arrow; linking it
    against real FE310 MMIO would reproduce their on-device runs)."""
    from repro.sw.program import lightbulb_program

    source = export_program(lightbulb_program())
    stub = ("uint32_t MMIOREAD(uint32_t a) { (void)a; return 0; }\n"
            "void MMIOWRITE(uint32_t a, uint32_t v) { (void)a; (void)v; }\n"
            "int main(void) { lightbulb_service(1); return 0; }\n")
    with tempfile.TemporaryDirectory() as tmp:
        path = os.path.join(tmp, "bulb.c")
        with open(path, "w") as handle:
            handle.write(source + stub)
        result = subprocess.run(
            [CC, "-std=c99", "-Wall", "-Wno-unused-variable",
             "-Wno-unused-but-set-variable", "-Wno-unused-function", "-c", "-o",
             os.path.join(tmp, "bulb.o"), path],
            capture_output=True, text=True)
    assert result.returncode == 0, result.stderr


@needs_cc
def test_doorlock_export_compiles():
    from repro.sw.doorlock import doorlock_program

    source = export_program(doorlock_program())
    with tempfile.TemporaryDirectory() as tmp:
        path = os.path.join(tmp, "lock.c")
        with open(path, "w") as handle:
            handle.write(source)
        result = subprocess.run(
            [CC, "-std=c99", "-Wall", "-Wno-unused-variable",
             "-Wno-unused-but-set-variable", "-c", "-o",
             os.path.join(tmp, "lock.o"), path],
            capture_output=True, text=True)
    assert result.returncode == 0, result.stderr


@needs_cc
def test_spi_driver_exports_and_matches():
    """The real SPI driver functions, exported and run natively against a
    C MMIO stub -- the paper's 'run the verified sources on the FE310'
    exercise in miniature. (MMIOREAD's scripted values have bit 31 clear,
    so the polls succeed immediately.)"""
    from repro.sw import spi_driver

    prog = dict(spi_driver.functions())
    prog["f"] = func("f", ("b",), ("r",), block(
        call(("x", "e1"), "spi_xchg", var("b")),
        call(("y", "e2"), "spi_xchg", var("x") + 1),
        set_("r", var("y") | (var("e1") << 8) | (var("e2") << 9)),
    ))
    check_against_interpreter(prog, "f", [0x41])
