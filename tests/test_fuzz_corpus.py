"""Replay every checked-in fuzz-corpus reproducer (tier-1).

Each ``fuzz-corpus/*.json`` file is a shrunk divergence reproducer (see
docs/fuzzing.md). Replaying them here guarantees two things forever
after: reproducers recorded under an injected mutation still *diverge*
when that mutation is applied (the oracle has not lost the kill), and
reproducers of since-fixed real bugs still *agree* everywhere (the bug
has not come back).
"""

import glob
import os

import pytest

from repro.fuzz.shrink import replay_file, stmt_count
from repro.fuzz.astjson import program_from_json
import json

CORPUS_DIR = os.path.join(os.path.dirname(os.path.dirname(
    os.path.abspath(__file__))), "fuzz-corpus")

CORPUS_FILES = sorted(glob.glob(os.path.join(CORPUS_DIR, "*.json")))


def test_corpus_is_not_empty():
    assert CORPUS_FILES, "expected checked-in reproducers in fuzz-corpus/"


@pytest.mark.parametrize("path", CORPUS_FILES,
                         ids=[os.path.basename(p) for p in CORPUS_FILES])
def test_corpus_file_replays(path):
    result = replay_file(path)
    assert result["ok"], ("%s: expected %s, got %s"
                          % (path, result["expected"], result["got"]))


@pytest.mark.parametrize("path", CORPUS_FILES,
                         ids=[os.path.basename(p) for p in CORPUS_FILES])
def test_corpus_file_is_minimal(path):
    with open(path) as fh:
        doc = json.load(fh)
    assert doc["format"] == "repro-fuzz-corpus"
    program = program_from_json(doc["program"])
    assert stmt_count(program) <= 10, "corpus reproducers must stay shrunk"
