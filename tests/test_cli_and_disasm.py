"""Tests for the disassembler and the CLI entry points."""

import io
import contextlib

from repro.__main__ import main
from repro.riscv import insts as I
from repro.riscv.disasm import disassemble, format_instr
from repro.riscv.encode import encode_program


# -- disassembler -------------------------------------------------------------------

def test_format_r_type():
    assert format_instr(I.r_type("add", 10, 11, 12)) == "add    a0, a1, a2"


def test_format_loads_stores():
    assert format_instr(I.load("lw", 5, 2, -4)) == "lw     t0, -4(sp)"
    assert format_instr(I.store("sw", 2, 1, 8)) == "sw     ra, 8(sp)"


def test_format_branch_with_pc_resolves_target():
    text = format_instr(I.branch("beq", 1, 2, -8), pc=0x100)
    assert "0xf8" in text


def test_format_jump_aliases():
    assert format_instr(I.jal(0, 16), pc=0x10) == "j      0x20"
    assert format_instr(I.jalr(0, 1, 0)) == "jr     ra"


def test_disassemble_with_symbols_and_junk():
    image = encode_program([I.i_type("addi", 1, 0, 5)]) + b"\xff\xff\xff\xff"
    lines = disassemble(image, symbols={"func.f": 0})
    assert lines[0] == "func.f:"
    assert "addi" in lines[1]
    assert ".word" in lines[2]


def test_disassemble_whole_lightbulb_roundtrips():
    from repro.sw.program import compiled_lightbulb

    compiled = compiled_lightbulb(stack_top=1 << 16)
    lines = disassemble(compiled.image, symbols=compiled.symbols)
    assert len([l for l in lines if "\t" in l]) == len(compiled.instrs)
    assert not any(".word" in l for l in lines)  # every word decodes


# -- CLI -----------------------------------------------------------------------------

def run_cli(*argv):
    out = io.StringIO()
    with contextlib.redirect_stdout(out):
        code = main(list(argv))
    return code, out.getvalue()


def test_cli_disasm():
    code, out = run_cli("disasm")
    assert code == 0
    assert "func.lightbulb_loop:" in out
    assert "jr     ra" in out


def test_cli_disasm_doorlock():
    code, out = run_cli("disasm", "--app", "doorlock")
    assert code == 0
    assert "func.doorlock_loop:" in out


def test_cli_export_c():
    code, out = run_cli("export-c")
    assert code == 0
    assert "uint32_t lightbulb_loop(uint32_t buf)" in out
    assert "br_divu" in out


def test_cli_verify():
    code, out = run_cli("verify")
    assert code == 0
    assert "verified lan9250_drain" in out
    assert "buggy drain fails" in out
    assert "prescreen:" in out


def test_cli_verify_no_prescreen():
    code, out = run_cli("verify", "--no-prescreen")
    assert code == 0
    assert "verified lan9250_drain" in out
    assert "prescreen:" not in out


def test_cli_lint():
    code, out = run_cli("lint")
    assert code == 0
    assert "no findings" in out


def test_cli_lint_json():
    import json

    code, out = run_cli("lint", "--app", "lightbulb", "--format", "json")
    assert code == 0
    assert json.loads(out) == {"findings": [], "count": 0}


def test_cli_end2end():
    code, out = run_cli("end2end", "--seed", "7", "--frames", "4")
    assert code == 0
    assert "within goodHlTrace" in out


def test_cli_demo():
    code, out = run_cli("demo")
    assert code == 0
    assert "ON command" in out
    assert "trace" in out
