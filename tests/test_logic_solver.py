"""Tests for the SAT solver, bit-blaster, and portfolio solver."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.logic import ProofFailure, check_valid, is_satisfiable, prove
from repro.logic import terms as T
from repro.logic.intervals import bv_range, decide_bool
from repro.logic.sat import SATISFIABLE, UNSATISFIABLE, solve_cnf


# -- SAT core ----------------------------------------------------------------

def test_sat_trivial():
    assert solve_cnf(1, [[1]])[0] == SATISFIABLE
    assert solve_cnf(1, [[1], [-1]])[0] == UNSATISFIABLE


def test_sat_empty_clause_unsat():
    assert solve_cnf(1, [[]])[0] == UNSATISFIABLE


def test_sat_model_satisfies():
    clauses = [[1, 2], [-1, 3], [-2, -3], [2, 3]]
    result, model = solve_cnf(3, clauses)
    assert result == SATISFIABLE
    for clause in clauses:
        assert any(model[abs(l)] == (l > 0) for l in clause)


def test_sat_pigeonhole_3_into_2_unsat():
    # var p(i,h): pigeon i in hole h; 3 pigeons, 2 holes.
    def v(i, h):
        return i * 2 + h + 1
    clauses = [[v(i, 0), v(i, 1)] for i in range(3)]
    for h in range(2):
        for i in range(3):
            for j in range(i + 1, 3):
                clauses.append([-v(i, h), -v(j, h)])
    assert solve_cnf(6, clauses)[0] == UNSATISFIABLE


def test_sat_random_3cnf_agrees_with_bruteforce():
    rng = random.Random(12345)
    for _ in range(30):
        n = rng.randint(3, 8)
        clauses = []
        for _ in range(rng.randint(3, 25)):
            clause = [rng.choice([-1, 1]) * rng.randint(1, n) for _ in range(3)]
            clauses.append(clause)
        result, model = solve_cnf(n, clauses)
        brute_sat = False
        for bits in range(1 << n):
            assign = {v: bool((bits >> (v - 1)) & 1) for v in range(1, n + 1)}
            if all(any(assign[abs(l)] == (l > 0) for l in c) for c in clauses):
                brute_sat = True
                break
        assert (result == SATISFIABLE) == brute_sat
        if result == SATISFIABLE:
            assert all(any(model[abs(l)] == (l > 0) for l in c) for c in clauses)


# -- validity checking --------------------------------------------------------

def test_valid_tautology():
    x = T.var("x")
    assert check_valid(T.eq(x, x)).valid
    assert check_valid(T.or_(T.ult(x, T.const(5)), T.not_(T.ult(x, T.const(5))))).valid


def test_invalid_with_countermodel():
    x = T.var("x")
    result = check_valid(T.ult(x, T.const(10)))
    assert not result.valid
    assert result.model["x"] >= 10


def test_add_commutes_valid():
    x, y = T.var("x"), T.var("y")
    prove(T.eq(T.add(x, y), T.add(y, x)))


def test_sub_add_cancel_valid():
    x, y = T.var("x"), T.var("y")
    prove(T.eq(T.sub(T.add(x, y), y), x))


def test_and_mask_bound():
    x = T.var("x")
    prove(T.ult(T.band(x, T.const(0xFF)), T.const(0x100)))


def test_xor_swap_identity():
    x, y = T.var("x"), T.var("y")
    a = T.bxor(x, y)
    b = T.bxor(a, y)  # == x
    prove(T.eq(b, x))


def test_mul_by_two_is_shift():
    x = T.var("x", 8)
    prove(T.eq(T.mul(x, T.const(2, 8)), T.shl(x, T.const(1, 8))))


def test_udiv_rem_decomposition_6bit():
    # 6-bit keeps the restoring-divider + multiplier SAT instance small
    # enough for the pure-Python CDCL while exercising the same encoding.
    x, y = T.var("x", 6), T.var("y", 6)
    q = T.bv_binop("udiv", x, y)
    r = T.bv_binop("urem", x, y)
    recomposed = T.add(T.mul(q, y), r)
    prove(T.eq(recomposed, x), hypotheses=[T.not_(T.eq(y, T.const(0, 6)))])


def test_udiv_rem_agree_with_python_exhaustive_5bit():
    # Exhaustive ground-truth check of the divider encoding at width 5.
    for a in range(0, 32, 3):
        for b in range(0, 32, 5):
            q = T.bv_binop("udiv", T.const(a, 5), T.const(b, 5))
            r = T.bv_binop("urem", T.const(a, 5), T.const(b, 5))
            if b == 0:
                assert q.value == 31 and r.value == a
            else:
                assert q.value == a // b and r.value == a % b


def test_hypotheses_used():
    x = T.var("x")
    goal = T.ult(x, T.const(0x100))
    assert not check_valid(goal).valid
    prove(goal, hypotheses=[T.ult(x, T.const(0x80))])


def test_contradictory_hypotheses_prove_anything():
    x = T.var("x")
    prove(T.eq(x, T.const(42)),
          hypotheses=[T.ult(x, T.const(1)), T.ult(T.const(2), x)])


def test_prove_raises_on_falsifiable():
    x = T.var("x")
    with pytest.raises(ProofFailure) as exc_info:
        prove(T.eq(x, T.const(0)))
    assert exc_info.value.model["x"] != 0


def test_is_satisfiable():
    x = T.var("x")
    sat = is_satisfiable(T.and_(T.ult(T.const(3), x), T.ult(x, T.const(5))))
    assert sat.valid
    assert sat.model["x"] == 4
    unsat = is_satisfiable(T.and_(T.ult(x, T.const(3)), T.ult(T.const(5), x)))
    assert not unsat.valid


def test_signed_comparison_blast():
    x = T.var("x")
    # x <s 0  <->  top bit set
    goal_lr = T.implies(T.slt(x, T.const(0)),
                        T.eq(T.band(x, T.const(0x80000000)), T.const(0x80000000)))
    goal_rl = T.implies(T.eq(T.band(x, T.const(0x80000000)), T.const(0x80000000)),
                        T.slt(x, T.const(0)))
    prove(goal_lr)
    prove(goal_rl)


def test_variable_shift_blast():
    n = T.var("n", 8)
    # (x << n) >> n keeps the low bits if no overflow: check a weaker fact,
    # shifting by more than width-1 bits of a masked amount stays defined.
    goal = T.eq(T.lshr(T.shl(T.const(1, 8), n), n), T.const(1, 8))
    # Not valid for n >= 8 (mod semantics) -- restrict:
    prove(goal, hypotheses=[T.ult(n, T.const(8, 8))])


# -- differential testing: solver vs direct evaluation ------------------------

@st.composite
def term_pairs(draw):
    """Random 8-bit term and a random model for its variables."""
    names = ["a", "b", "c"]
    model = {n: draw(st.integers(0, 255)) for n in names}

    def gen(depth):
        if depth == 0:
            choice = draw(st.integers(0, 1))
            if choice == 0:
                return T.const(draw(st.integers(0, 255)), 8)
            return T.var(draw(st.sampled_from(names)), 8)
        op = draw(st.sampled_from(["add", "sub", "mul", "band", "bor", "bxor"]))
        return T.bv_binop(op, gen(depth - 1), gen(depth - 1))

    return gen(draw(st.integers(1, 3))), model


@settings(max_examples=40, deadline=None)
@given(term_pairs())
def test_blasted_semantics_matches_evaluation(pair):
    term, model = pair
    expected = T.evaluate(term, model)
    # "term == expected under model bindings" must be valid.
    bindings = [T.eq(T.var(n, 8), T.const(v, 8)) for n, v in model.items()]
    prove(T.eq(term, T.const(expected, 8)), hypotheses=bindings)
    # and "term == expected+1" must be refutable
    wrong = (expected + 1) & 0xFF
    result = check_valid(T.eq(term, T.const(wrong, 8)), hypotheses=bindings)
    assert not result.valid


# -- intervals ----------------------------------------------------------------

def test_interval_const_and_var():
    assert bv_range(T.const(7)) == (7, 7)
    assert bv_range(T.var("x", 8)) == (0, 255)


def test_interval_band_bound():
    x = T.var("x")
    assert bv_range(T.band(x, T.const(0xFF)))[1] <= 0xFF


def test_interval_decides_cheap_vcs():
    x = T.var("x")
    masked = T.band(x, T.const(0xF))
    assert decide_bool(T.ult(masked, T.const(0x10))) is True
    assert decide_bool(T.ult(T.const(0x10), masked)) is False


def test_interval_undecided_returns_none():
    x = T.var("x")
    assert decide_bool(T.ult(x, T.const(5))) is None
