"""Tests for the optimizing-compiler baseline: pass correctness (semantics
preserved) and effectiveness (it actually speeds code up) -- §7.2.1's
"gcc -O3" stand-in."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bedrock2 import ast_ as A
from repro.bedrock2.builder import (
    block, call, func, if_, interact, lit, load4, set_, stackalloc, store4,
    var, while_,
)
from repro.bedrock2.semantics import ExtHandler, Memory, UndefinedBehavior, run_function
from repro.compiler.flatten import flatten_program
from repro.compiler.flatimp import run_flat_function
from repro.compiler.opt import (
    compile_program_optimized, const_prop_program, dce_program,
    inline_program, optimize,
)
from repro.compiler.pipeline import compile_program, run_compiled


class Bus:
    def __init__(self):
        self.value = 0
        self.writes = []

    def is_mmio(self, addr):
        return addr >= 0x10000000

    def read(self, addr):
        self.value = (self.value * 7 + addr) & 0xFFFFFFFF
        return self.value

    def write(self, addr, value):
        self.writes.append((addr, value))


class Ext(ExtHandler):
    def __init__(self, bus):
        self.bus = bus

    def call(self, action, args, mem):
        if action == "MMIOREAD":
            return (self.bus.read(args[0]),)
        if action == "MMIOWRITE":
            self.bus.write(args[0], args[1])
            return ()
        raise UndefinedBehavior(action)


def check_opt(prog, args=(), n_rets=1, data=b"", entry="main"):
    """Source semantics vs optimized-FlatImp vs optimized-compiled machine."""
    def mem():
        return Memory.from_regions([(0x4000, data)]) if data else Memory()

    src_rets, src_state = run_function(prog, entry, args, mem=mem(),
                                       ext=Ext(Bus()))
    flat = optimize(flatten_program(prog))
    flat_rets, _, _, flat_trace = run_flat_function(flat, entry, args,
                                                    mem=mem(), ext=Ext(Bus()))
    assert flat_rets == src_rets
    assert flat_trace == src_state.trace
    compiled = compile_program_optimized(prog, entry=entry)
    rets, machine = run_compiled(compiled, args, n_rets=n_rets,
                                 mmio_bus=Bus(),
                                 extra_memory=[(0x4000, data)] if data else ())
    assert rets == src_rets[:n_rets]
    assert machine.trace == [e.to_mmio_triple() for e in src_state.trace]
    return compiled, machine


# -- pass-level unit tests -----------------------------------------------------------

def test_const_prop_folds_chains():
    prog = {"main": func("main", (), ("r",), block(
        set_("a", lit(3)), set_("b", var("a") * 4),
        set_("r", var("b") + var("a"))))}
    flat = const_prop_program(flatten_program(prog))
    from repro.compiler.flatimp import FSetLit

    # Everything folds to a single constant for r.
    lits = [s for s in flat["main"].body if isinstance(s, FSetLit)]
    assert any(s.value == 15 for s in lits)


def test_const_prop_kills_at_joins():
    prog = {"main": func("main", ("c",), ("r",), block(
        set_("a", lit(1)),
        if_(var("c"), set_("a", lit(2)), block()),
        set_("r", var("a"))))}
    check_opt(prog, args=(0,))
    check_opt(prog, args=(1,))


def test_const_prop_folds_constant_branch():
    prog = {"main": func("main", (), ("r",), block(
        set_("c", lit(1)),
        if_(var("c"), set_("r", lit(10)), set_("r", lit(20)))))}
    flat = const_prop_program(flatten_program(prog))
    from repro.compiler.flatimp import FIf

    assert not any(isinstance(s, FIf) for s in flat["main"].body)
    check_opt(prog)


def test_dce_drops_dead_code_keeps_effects():
    prog = {"main": func("main", (), ("r",), block(
        set_("dead", lit(1) + 2),
        interact([], "MMIOWRITE", lit(0x10024000), lit(5)),
        set_("r", lit(7))))}
    flat = dce_program(flatten_program(prog))
    from repro.compiler.flatimp import FInteract

    body = flat["main"].body
    assert any(isinstance(s, FInteract) for s in body)
    assert not any(getattr(s, "dst", None) == "dead" for s in body)
    check_opt(prog)


def test_inliner_respects_size_limit():
    big_body = block(*[set_("x%d" % i, lit(i)) for i in range(100)],
                     set_("b", lit(0)))
    prog = {
        "small": func("small", ("a",), ("b",), set_("b", var("a") + 1)),
        "big": func("big", ("a",), ("b",), big_body),
        "main": func("main", (), ("r",), block(
            call(("x",), "small", lit(1)),
            call(("y",), "big", lit(2)),
            set_("r", var("x") + var("y")))),
    }
    flat = inline_program(flatten_program(prog), max_size=40)
    from repro.compiler.flatimp import FCall

    calls = [s for s in flat["main"].body if isinstance(s, FCall)]
    assert [c.func for c in calls] == ["big"]  # small inlined, big not
    check_opt(prog)


def test_inliner_renames_avoid_capture():
    prog = {
        "h": func("h", ("a",), ("b",), block(set_("t", var("a") * 2),
                                             set_("b", var("t") + 1))),
        "main": func("main", (), ("r",), block(
            set_("t", lit(100)),  # same name as callee-local
            call(("x",), "h", lit(3)),
            set_("r", var("t") + var("x")))),
    }
    check_opt(prog)  # 100 + 7


def test_stackalloc_bodies_not_inlined_but_optimized():
    prog = {
        "withbuf": func("withbuf", (), ("r",), stackalloc("p", 8, block(
            store4(var("p"), lit(9)), set_("r", load4(var("p")))))),
        "main": func("main", (), ("r",), call(("r",), "withbuf")),
    }
    check_opt(prog)


# -- whole-pipeline differentials ---------------------------------------------------

def test_loops_and_io_preserved():
    prog = {"main": func("main", ("n",), ("s",), block(
        set_("s", lit(0)), set_("i", lit(0)),
        while_(var("i") < var("n"), block(
            interact(["v"], "MMIOREAD", lit(0x10024048)),
            set_("s", var("s") + var("v")),
            set_("i", var("i") + 1)))))}
    check_opt(prog, args=(6,))


def test_memory_programs_preserved():
    prog = {"main": func("main", ("p",), ("r",), block(
        store4(var("p"), lit(0x1111)),
        store4(var("p") + 4, load4(var("p")) + 1),
        set_("r", load4(var("p") + 4))))}
    check_opt(prog, args=(0x4000,), data=bytes(16))


def test_optimizer_on_the_lightbulb_itself():
    from repro.bedrock2.semantics import to_mmio_triples
    from repro.riscv.machine import RiscvMachine
    from repro.sw.program import lightbulb_program, make_platform

    prog = lightbulb_program()
    plat1 = make_platform()
    rets, state = run_function(prog, "lightbulb_service", [2],
                               ext=plat1.ext_handler())
    src_trace = to_mmio_triples(state.trace)
    compiled = compile_program_optimized(prog, entry="main",
                                         stack_top=1 << 18)
    plat2 = make_platform()
    machine = RiscvMachine.with_program(compiled.image, mem_size=1 << 18,
                                        mmio_bus=plat2.bus)
    machine.run(3_000_000, stop=lambda m: len(m.trace) >= len(src_trace))
    assert machine.trace[:len(src_trace)] == src_trace


def test_optimizer_actually_wins():
    """The point of the baseline: optimized code executes fewer
    instructions than the verified compiler's output."""
    prog = {"main": func("main", ("n",), ("s",), block(
        set_("s", lit(0)), set_("i", lit(0)),
        while_(var("i") < var("n"), block(
            set_("a", var("i") * 2),
            set_("b", var("a") + 3),
            set_("s", var("s") + var("b")),
            set_("i", var("i") + 1)))))}
    naive = compile_program(prog, entry="main")
    opt = compile_program_optimized(prog, entry="main")
    _, m1 = run_compiled(naive, (200,))
    _, m2 = run_compiled(opt, (200,))
    r1, _ = run_compiled(naive, (200,))
    r2, _ = run_compiled(opt, (200,))
    assert r1 == r2
    assert m2.instret < m1.instret


# -- generated programs ----------------------------------------------------------------

NAMES = ["a", "b", "c"]


@st.composite
def gen_cmd(draw, depth=2):
    kinds = ["set", "seq", "if", "io"] + (["while"] if depth > 0 else [])
    kind = draw(st.sampled_from(kinds))
    if kind == "set":
        def gen_expr(d=2):
            if d == 0 or draw(st.booleans()):
                if draw(st.booleans()):
                    return lit(draw(st.integers(0, 2**32 - 1)))
                return var(draw(st.sampled_from(NAMES)))
            op = draw(st.sampled_from(list(A.BINOPS)))
            return type(var("a"))(A.EOp(op, gen_expr(d - 1).node,
                                        gen_expr(d - 1).node))
        return set_(draw(st.sampled_from(NAMES)), gen_expr())
    if kind == "seq":
        return block(draw(gen_cmd(depth=max(0, depth - 1))),
                     draw(gen_cmd(depth=max(0, depth - 1))))
    if kind == "if":
        return if_(var(draw(st.sampled_from(NAMES))),
                   draw(gen_cmd(depth=max(0, depth - 1))),
                   draw(gen_cmd(depth=max(0, depth - 1))))
    if kind == "while":
        counter = "n%d" % depth
        body = draw(gen_cmd(depth=depth - 1))
        return block(set_(counter, lit(draw(st.integers(0, 4)))),
                     while_(var(counter),
                            block(body, set_(counter, var(counter) - 1))))
    return interact([draw(st.sampled_from(NAMES))], "MMIOREAD",
                    lit(0x10024000))


@settings(max_examples=40, deadline=None)
@given(gen_cmd(depth=3),
       st.lists(st.integers(0, 2**32 - 1), min_size=3, max_size=3))
def test_generated_programs_optimize_correctly(cmd, args):
    prog = {"main": func("main", tuple(NAMES), ("a",), cmd)}
    check_opt(prog, args=tuple(args))
