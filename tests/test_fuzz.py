"""Tests for the differential fuzzing subsystem (`repro.fuzz`)."""

import json
import random

import pytest

from repro.bedrock2.semantics import Memory, MMIOExtHandler, run_function
from repro.fuzz.astjson import program_from_json, program_to_json
from repro.fuzz.generator import (
    GenConfig,
    PROFILES,
    SCRATCH_BASE,
    SCRATCH_SIZE,
    adversarial_frames,
    generate_program,
    rng_for,
)
from repro.fuzz.mutate import CATALOG, mutation_context, score_differential
from repro.fuzz.oracle import (
    LAYERS,
    SyntheticDevice,
    run_differential,
    run_fuzz_seed,
)
from repro.fuzz.shrink import (
    replay_file,
    save_reproducer,
    shrink_reproducer,
    stmt_count,
)
from repro.platform.net import adversarial_stream


# -- generator ---------------------------------------------------------------


def test_generator_deterministic():
    assert program_to_json(generate_program(7)) == \
        program_to_json(generate_program(7))
    assert program_to_json(generate_program(7)) != \
        program_to_json(generate_program(8))


def test_generator_profiles_cover_main():
    for profile in PROFILES.values():
        program = generate_program(3, profile)
        assert "main" in program
        assert program["main"].params == ()


def test_astjson_roundtrip():
    for seed in range(10):
        program = generate_program(seed)
        doc = program_to_json(program)
        assert program_to_json(program_from_json(doc)) == doc
        # and the document survives a JSON wire trip
        assert json.loads(json.dumps(doc)) == doc


def test_generated_programs_are_ub_free():
    """The generator's well-formedness guarantees: every program runs to
    completion on the reference interpreter with no UB."""
    for seed in range(25):
        program = generate_program(seed)
        dev = SyntheticDevice()
        mem = Memory.from_regions([(SCRATCH_BASE, bytes(SCRATCH_SIZE))])
        rets, _state = run_function(program, "main", (), mem=mem,
                                    ext=MMIOExtHandler(dev))
        assert len(rets) == len(program["main"].rets)


def test_adversarial_frames_shares_rng_discipline():
    """`end2end --seeds` stimulus == `fuzz` stimulus for the same seed."""
    assert adversarial_frames(42, 8) == \
        adversarial_stream(random.Random(42), 8)
    assert rng_for(42).random() == random.Random(42).random()


# -- oracle ------------------------------------------------------------------


def test_all_layers_agree():
    for seed in range(6):
        result = run_fuzz_seed(seed, logic_check=(seed == 0))
        assert result["status"] == "ok", result
        assert result["layers"] == list(LAYERS)
    logic = run_fuzz_seed(0, logic_check=True)["logic"]
    assert logic["obligations"] > 0
    assert logic["failed"] == 0


def test_small_profile_agrees():
    config = GenConfig.from_dict(PROFILES["small"].to_dict())
    for seed in range(4):
        result = run_fuzz_seed(seed, config=config.to_dict())
        assert result["status"] == "ok", result


def test_synthetic_device_deterministic_in_sequence():
    a, b = SyntheticDevice(), SyntheticDevice()
    values = [(a.read(0x4000_0000), b.read(0x4000_0000)) for _ in range(4)]
    assert all(x == y for x, y in values)
    assert len({x for x, _ in values}) > 1  # reads are not constant


# -- mutation testing --------------------------------------------------------


def test_mutation_context_restores_patches():
    from repro.compiler.codegen import FunctionCompiler

    original = FunctionCompiler._OP_MAP
    with mutation_context("codegen-sub-as-add"):
        assert FunctionCompiler._OP_MAP["sub"] == "add"
    assert FunctionCompiler._OP_MAP is original


@pytest.mark.parametrize("name", ["flatten-drop-store",
                                  "kami-mem-wide-store"])
def test_fast_mutations_killed(name):
    result = run_fuzz_seed(0, mutation=name)
    assert result["status"] == "divergence", result


def test_catalog_spans_required_layers():
    layers = {m.layer for m in CATALOG.values()}
    assert {"compiler", "encoder", "pipeline"} <= layers
    assert len(CATALOG) >= 8


def test_mutation_score_fast_subset():
    report = score_differential(seeds=(0,),
                                names=("codegen-ltu-as-lts",
                                       "codegen-eq-no-normalize"))
    assert report["killed"] == report["total"] == 2


# -- shrinking and corpus ----------------------------------------------------


def test_shrink_and_replay(tmp_path):
    mutation = "flatten-drop-store"
    program = generate_program(0)
    with mutation_context(mutation):
        result = run_differential(program)
    assert result["status"] == "divergence"
    shrunk, stats = shrink_reproducer(program, result["divergence"],
                                      mutation=mutation)
    assert stats["shrunk_stmts"] <= 10
    assert stats["shrunk_stmts"] <= stats["original_stmts"]
    assert stmt_count(shrunk) == stats["shrunk_stmts"]
    with mutation_context(mutation):
        final = run_differential(shrunk)
    assert final["status"] == "divergence"
    path = save_reproducer(str(tmp_path), 0, shrunk, final["divergence"],
                           mutation=mutation, stats=stats)
    replay = replay_file(path)
    assert replay["ok"], replay


# -- determinism of the CLI report -------------------------------------------


def _run_cli_fuzz(tmp_path, name):
    from repro.__main__ import main

    out = tmp_path / name
    code = main(["fuzz", "--seeds", "25", "--profile", "small",
                 "--logic-sample", "2", "--json", str(out)])
    assert code == 0
    return out.read_bytes()


def test_fuzz_reports_byte_identical(tmp_path, capsys):
    first = _run_cli_fuzz(tmp_path, "r1.json")
    second = _run_cli_fuzz(tmp_path, "r2.json")
    capsys.readouterr()
    assert first == second


def test_cli_mutate_triage_exit_codes(tmp_path, capsys):
    from repro.__main__ import main

    # a killed mutation is a success in triage mode
    assert main(["fuzz", "--seeds", "1", "--profile", "small",
                 "--logic-sample", "0",
                 "--mutate", "flatten-drop-store"]) == 0
    capsys.readouterr()
