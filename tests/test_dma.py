"""The DMA extension (paper section 6.2): memory-ownership transfer
recorded through the I/O interface. Tests the ownership discipline at the
ISA level, a Bedrock2 driver for the engine, and the trace specification
of the transfer protocol."""

import pytest

from repro.bedrock2.builder import (
    block, call, func, interact, lit, load1, set_, var, while_, if_,
)
from repro.compiler import compile_program
from repro.platform.bus import MMIOBus
from repro.platform.dma import (
    DMA_ADDR, DMA_BASE, DMA_CTRL, DMA_LEN, DMA_STATUS, DMA_VALUE,
    DmaEngine, dma_transfer_spec,
)
from repro.riscv import insts as I
from repro.riscv.encode import encode_program
from repro.riscv.machine import RiscvMachine, RiscvUB


def make_dma_machine(image, transfer_polls=3, mem_size=1 << 16):
    engine = DmaEngine(transfer_polls=transfer_polls)
    bus = MMIOBus([engine])
    machine = RiscvMachine.with_program(image, mem_size=mem_size,
                                        mmio_bus=bus)
    engine.attach_machine(machine)
    return machine, engine, bus


# -- ownership at the ISA level -----------------------------------------------------

def test_loan_makes_cpu_access_ub():
    machine, engine, _ = make_dma_machine(b"\x00" * 8)
    machine.loan_out(0x1000, 64)
    with pytest.raises(RiscvUB):
        machine.load(4, 0x1000)
    with pytest.raises(RiscvUB):
        machine.store(4, 0x1020, 1)
    # Adjacent memory is still fine.
    machine.store(4, 0x1040, 5)
    assert machine.load(4, 0x1040) == 5


def test_loan_return_restores_access_with_device_data():
    machine, _, _ = make_dma_machine(b"\x00" * 8)
    machine.loan_out(0x1000, 8)
    machine.loan_return(0x1000, b"\xab" * 8)
    assert machine.load(4, 0x1000) == 0xABABABAB


def test_loan_return_marks_region_nonexecutable():
    # Device-written bytes are data, not code: XAddrs must exclude them
    # (the stale-instruction discipline extends to DMA naturally).
    machine, _, _ = make_dma_machine(b"\x00" * 8)
    machine.loan_out(0x100, 4)
    machine.loan_return(0x100, encode_program([I.i_type("addi", 1, 0, 1)]))
    machine.pc = 0x100
    with pytest.raises(RiscvUB, match="non-executable"):
        machine.step()


def test_unknown_loan_return_rejected():
    machine, _, _ = make_dma_machine(b"\x00" * 8)
    with pytest.raises(ValueError):
        machine.loan_return(0x5000)


# -- the engine over MMIO ---------------------------------------------------------------

DMA_PROGRAM = {
    # dma_fill(addr, len, val) -> err: program the engine, start, poll.
    "dma_fill": func("dma_fill", ("addr", "n", "val"), ("err",), block(
        interact([], "MMIOWRITE", lit(DMA_BASE + DMA_ADDR), var("addr")),
        interact([], "MMIOWRITE", lit(DMA_BASE + DMA_LEN), var("n")),
        interact([], "MMIOWRITE", lit(DMA_BASE + DMA_VALUE), var("val")),
        interact([], "MMIOWRITE", lit(DMA_BASE + DMA_CTRL), lit(1)),
        set_("err", lit(1)),
        set_("i", lit(64)),
        while_(var("i"), block(
            interact(["s"], "MMIOREAD", lit(DMA_BASE + DMA_STATUS)),
            if_(var("s"),
                set_("i", var("i") - 1),
                block(set_("i", lit(0)), set_("err", lit(0)))),
        )),
    )),
    "main": func("main", ("dst", "n"), ("r",), block(
        call(("e",), "dma_fill", var("dst"), var("n"), lit(0x5A)),
        # After completion the CPU owns the region again and reads the
        # device-written data.
        set_("r", load1(var("dst")) + load1(var("dst") + var("n") - 1)
             + (var("e") << 16)),
    )),
}


def test_dma_fill_end_to_end_on_machine():
    compiled = compile_program(DMA_PROGRAM, entry="main", stack_top=0x8000)
    engine = DmaEngine(transfer_polls=3)
    bus = MMIOBus([engine])
    machine = RiscvMachine.with_program(compiled.image, mem_size=1 << 15,
                                        mmio_bus=bus)
    engine.attach_machine(machine)
    machine.set_register(10, 0x4000)  # dst
    machine.set_register(11, 64)      # n
    machine.run(100_000, until_pc=compiled.halt_pc)
    assert machine.get_register(10) == 0x5A + 0x5A
    assert engine.transfers_completed == 1
    assert machine.trace.count(("st", DMA_BASE + DMA_CTRL, 1)) == 1


def test_cpu_touch_during_dma_is_ub():
    prog = dict(DMA_PROGRAM)
    prog["main"] = func("main", ("dst", "n"), ("r",), block(
        interact([], "MMIOWRITE", lit(DMA_BASE + DMA_ADDR), var("dst")),
        interact([], "MMIOWRITE", lit(DMA_BASE + DMA_LEN), var("n")),
        interact([], "MMIOWRITE", lit(DMA_BASE + DMA_CTRL), lit(1)),
        set_("r", load1(var("dst"))),  # race: region is on loan!
    ))
    compiled = compile_program(prog, entry="main", stack_top=0x8000)
    engine = DmaEngine(transfer_polls=3)
    bus = MMIOBus([engine])
    machine = RiscvMachine.with_program(compiled.image, mem_size=1 << 15,
                                        mmio_bus=bus)
    engine.attach_machine(machine)
    machine.set_register(10, 0x4000)
    machine.set_register(11, 64)
    with pytest.raises(RiscvUB):
        machine.run(100_000, until_pc=compiled.halt_pc)


def test_dma_trace_matches_protocol_spec():
    compiled = compile_program(DMA_PROGRAM, entry="main", stack_top=0x8000)
    engine = DmaEngine(transfer_polls=2)
    bus = MMIOBus([engine])
    machine = RiscvMachine.with_program(compiled.image, mem_size=1 << 15,
                                        mmio_bus=bus)
    engine.attach_machine(machine)
    machine.set_register(10, 0x4000)
    machine.set_register(11, 32)
    machine.run(100_000, until_pc=compiled.halt_pc)
    spec = dma_transfer_spec(0x4000, 32, 0x5A)
    assert spec.matches(machine.trace)
    # And prefix-closedness mid-transfer.
    assert spec.prefix_of(machine.trace[:5])


def test_dma_spec_rejects_out_of_protocol_traces():
    spec = dma_transfer_spec(0x4000, 32, 0x5A)
    # Reading STATUS idle before CTRL was kicked:
    bogus = [("ld", DMA_BASE + DMA_STATUS, 0)]
    assert not spec.matches(bogus)
    assert not spec.prefix_of(bogus)
