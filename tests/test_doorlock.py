"""The door-lock application: the stack reused for a second app, with its
own spec. The security property is authentication: only frames carrying
the secret PIN move the lock."""


from repro.bedrock2.builder import call, var
from repro.bedrock2.semantics import Interpreter, Memory, State, to_mmio_triples
from repro.platform.net import (
    lightbulb_packet, oversize_packet, truncated_packet,
)
from repro.riscv.machine import RiscvMachine
from repro.compiler import compile_program
from repro.sw import constants as C
from repro.sw.doorlock import LOCK_PIN, doorlock_program, lock_packet
from repro.sw.doorlock_spec import good_lock_trace
from repro.sw.program import make_platform

PIN = 0xC0DE1234
PROG = doorlock_program(PIN)
SPEC = good_lock_trace(PIN)


def lock_state(plat):
    return bool((plat.gpio.output_val >> LOCK_PIN) & 1)


def run_session(frames, loops=None):
    plat = make_platform()
    mem = Memory.from_regions([(0x100000, bytes(C.RX_BUFFER_BYTES))])
    state = State(mem, {"buf": 0x100000})
    interp = Interpreter(PROG, ext=plat.ext_handler(), fuel=30_000_000)
    interp.exec_cmd(call(("e",), "doorlock_init"), state)
    for frame in frames:
        plat.lan.inject_frame(frame)
    for _ in range(loops if loops is not None else len(frames) + 2):
        interp.exec_cmd(call(("e",), "doorlock_loop", var("buf")), state)
    return plat, to_mmio_triples(state.trace)


def test_correct_pin_unlocks_and_locks():
    plat, trace = run_session([lock_packet(PIN, True)])
    assert lock_state(plat)
    plat, trace = run_session([lock_packet(PIN, True),
                               lock_packet(PIN, False)])
    assert not lock_state(plat)


def test_wrong_pin_ignored():
    for wrong in (0, PIN ^ 1, PIN ^ 0x80000000, 0xFFFFFFFF):
        plat, _ = run_session([lock_packet(wrong, True)])
        assert not lock_state(plat), "wrong PIN %#x moved the lock!" % wrong


def test_near_miss_pins_ignored():
    # Flip each byte of the correct PIN individually.
    for shift in (0, 8, 16, 24):
        wrong = PIN ^ (0xFF << shift)
        plat, _ = run_session([lock_packet(wrong, True)])
        assert not lock_state(plat)


def test_lightbulb_packets_do_not_unlock():
    # A valid *lightbulb* command is an unauthorized frame for the lock.
    plat, trace = run_session([lightbulb_packet(True)])
    assert not lock_state(plat)
    assert SPEC.matches(trace)


def test_malformed_traffic_ignored_and_in_spec():
    plat, trace = run_session([truncated_packet(), oversize_packet(2000),
                               lock_packet(PIN ^ 5, True)])
    assert not lock_state(plat)
    assert SPEC.matches(trace)


def test_authorized_traces_in_spec():
    _, trace = run_session([lock_packet(PIN, True), lock_packet(PIN, False)])
    assert SPEC.matches(trace)
    for cut in range(0, len(trace), 211):
        assert SPEC.prefix_of(trace[:cut])


def test_spec_rejects_unlock_without_authorized_frame():
    _, trace = run_session([lock_packet(PIN ^ 1, True)])
    assert SPEC.matches(trace)
    tampered = list(trace)
    # Claim the unauthorized run ALSO unlocked: must be out of spec.
    tampered.append(("st", C.GPIO_OUTPUT_VAL_ADDR, 1 << LOCK_PIN))
    assert not SPEC.matches(tampered)
    assert not SPEC.prefix_of(tampered)


def test_doorlock_program_logic_verification():
    """Modular reuse: only the two new app functions need verifying; the
    driver contracts are shared with the lightbulb."""
    from repro.sw.verify import verify_doorlock

    run = verify_doorlock()
    assert {r.function for r in run.reports} == {"doorlock_init",
                                                 "doorlock_loop"}
    assert run.total_obligations >= 4


def test_compiled_doorlock_end_to_end():
    compiled = compile_program(PROG, entry="main", stack_top=1 << 16)
    plat = make_platform()
    machine = RiscvMachine.with_program(compiled.image, mem_size=1 << 16,
                                        mmio_bus=plat.bus)
    machine.run(400_000, stop=lambda m: plat.lan.rx_enabled)
    plat.lan.inject_frame(lock_packet(PIN, True))
    machine.run(600_000, stop=lambda m: lock_state(plat))
    assert lock_state(plat)
    plat.lan.inject_frame(lock_packet(0xBAD0BAD0, False))  # attack: ignored
    machine.run(600_000, stop=lambda m: not plat.lan.frames)
    assert lock_state(plat)  # still unlocked: attacker couldn't relock
    plat.lan.inject_frame(lock_packet(PIN, False))
    machine.run(600_000, stop=lambda m: not lock_state(plat))
    assert not lock_state(plat)
    assert SPEC.prefix_of(machine.trace)
