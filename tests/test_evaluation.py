"""Tests for the evaluation machinery itself: LoC accounting, the Table 1
self-probe, parameterization witnesses, and timing-harness invariants."""

import math

import pytest

from repro.core.loc import count_loc, module_loc, table3_rows, table4_rows, totals
from repro.core.parameterization import PARAMETERS
from repro.core.survey import CRITERIA, PRIOR_WORK, full_table, self_assessment


# -- LoC accounting ------------------------------------------------------------------

def test_count_loc_skips_blank_comment_docstring(tmp_path):
    f = tmp_path / "m.py"
    f.write_text('"""Module\ndocstring."""\n\n# comment\nx = 1\n\ny = 2  # ok\n')
    assert count_loc(str(f)) == 2


def test_count_loc_single_line_docstring(tmp_path):
    f = tmp_path / "m.py"
    f.write_text('"""One liner."""\nz = 3\n')
    assert count_loc(str(f)) == 1


def test_module_loc_real_modules():
    assert module_loc("logic/sat.py") > 100
    assert module_loc("sw/specs.py") > 100


def test_table3_rows_nonempty():
    rows = table3_rows()
    assert len(rows) == 3
    assert all(loc > 0 for _, loc in rows)


def test_table4_overheads():
    rows = table4_rows()
    by_layer = {r.layer: r for r in rows}
    assert by_layer["compiler"].implementation > 500
    app = by_layer["lightbulb app"]
    assert not math.isnan(app.overhead)
    assert app.overhead > 1.0


def test_totals_cover_repo():
    sums = totals()
    assert sums["src"] > 5000
    assert sums["tests"] > 1000


# -- Table 1 -----------------------------------------------------------------------------

def test_self_assessment_probes_all_criteria():
    assessment = self_assessment()
    assert set(assessment) == set(CRITERIA)
    assert assessment["Standardized ISA"] == "yes"
    assert assessment["HDL"] == "yes"
    assert assessment["One proof assistant"] == "partial"  # honesty


def test_full_table_includes_all_projects():
    table = full_table()
    assert set(PRIOR_WORK) < set(table)
    assert "This repo (Python)" in table
    for row in table.values():
        assert len(row) == len(CRITERIA)


# -- Table 2 witnesses ----------------------------------------------------------------------

@pytest.mark.parametrize("param", PARAMETERS, ids=[p.name for p in PARAMETERS])
def test_parameter_witness(param):
    assert param.witness(), param.witness_desc


def test_eight_parameters_like_the_paper():
    assert len(PARAMETERS) == 8


# -- timing harness ---------------------------------------------------------------------------

def test_latency_measurement_is_deterministic():
    from repro.core.timing import measure_latency

    a = measure_latency("fe310", "verified", "verified")
    b = measure_latency("fe310", "verified", "verified")
    assert a.latency_cycles == b.latency_cycles
    assert a.boot_cycles == b.boot_cycles


def test_prototype_beats_verified():
    from repro.core.timing import measure_latency

    verified = measure_latency("fe310", "verified", "verified")
    prototype = measure_latency("fe310", "optimizing", "prototype")
    assert prototype.latency_cycles < verified.latency_cycles


# Golden axis ratios for §7.2.1's factor decomposition. The latency
# harness is deterministic, so any drift here means a semantic change in
# the cycle model (core/timing.py, kami/pipeline_proc.py) or the driver
# variants -- exactly the dependencies the static WCET cost model is
# calibrated against (analysis/costmodel.py). Update these goldens and
# timing-budgets.json together, deliberately.
_GOLDEN_FACTORS = {
    "spi_pipelining": 1.235756,
    "timeout_logic": 1.408786,
    "compiler": 2.346991,
    "processor": 1.323525,
    "total": 5.407806,
}


@pytest.mark.parametrize("axis", sorted(_GOLDEN_FACTORS))
def test_factor_decomposition_matches_goldens(axis):
    from repro.core.timing import factor_decomposition

    measured = factor_decomposition()[axis]
    assert measured == pytest.approx(_GOLDEN_FACTORS[axis], abs=5e-7)


def test_factor_product_equals_total():
    """The per-axis factors multiply out to the end-to-end ratio -- the
    decomposition covers the whole speedup with no leftover factor."""
    from repro.core.timing import factor_decomposition

    decomposition = factor_decomposition()
    assert decomposition["product"] == pytest.approx(
        decomposition["total"], rel=1e-12)
