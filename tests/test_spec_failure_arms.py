"""Coverage of the specification's failure arms.

The paper's drivers are total: on an unresponsive device they time out and
return an error, and the specification must cover those traces too (the
DeviceFail/boot-failure arms of `good_hl_trace`). These tests run the
system against dead and flaky devices and check (a) the software really
does give up -- total correctness observed -- and (b) the resulting traces
are still inside the spec."""


from repro.bedrock2.builder import call, var
from repro.bedrock2.semantics import Interpreter, Memory, State, to_mmio_triples
from repro.platform.net import lightbulb_packet
from repro.sw import constants as C
from repro.sw.program import lightbulb_program, make_platform
from repro.sw.specs import good_hl_trace

PROG = lightbulb_program()
SPEC = good_hl_trace()


def run_service(plat, loops=2):
    mem = Memory.from_regions([(0x100000, bytes(C.RX_BUFFER_BYTES))])
    state = State(mem, {"buf": 0x100000})
    interp = Interpreter(PROG, ext=plat.ext_handler(), fuel=80_000_000)
    interp.exec_cmd(call(("e",), "lightbulb_init"), state)
    init_err = state.locals["e"]
    for _ in range(loops):
        interp.exec_cmd(call(("e",), "lightbulb_loop", var("buf")), state)
    return init_err, state.locals["e"], to_mmio_triples(state.trace)


def test_dead_spi_device():
    """RXDATA never ready: every spi_read times out after SPI_PATIENCE
    polls; init fails; the loop keeps failing -- all within the spec."""
    plat = make_platform()
    plat.spi.rx_latency = 10**9
    init_err, loop_err, trace = run_service(plat)
    assert init_err != 0 and loop_err != 0
    assert SPEC.matches(trace), "dead-device trace left the spec"
    assert SPEC.prefix_of(trace[: len(trace) // 2])


def test_lan_never_finishes_power_up():
    """BYTE_TEST never returns the magic: wait_for_boot exhausts its
    patience (BootSeq's failure arm)."""
    plat = make_platform(power_up_reads=10**9)
    init_err, loop_err, trace = run_service(plat)
    assert init_err == C.ERR_TIMEOUT
    assert SPEC.matches(trace)


def test_lan_boots_but_never_ready():
    """BYTE_TEST answers but HW_CFG.READY never rises: the second wait
    loop's failure arm."""
    plat = make_platform(power_up_reads=0)
    original = plat.lan.reg_read

    def no_ready(addr):
        from repro.platform.lan9250 import HW_CFG, HW_CFG_READY

        value = original(addr)
        if addr == HW_CFG:
            value &= ~HW_CFG_READY
        return value

    plat.lan.reg_read = no_ready
    init_err, loop_err, trace = run_service(plat)
    assert init_err == C.ERR_TIMEOUT
    assert SPEC.matches(trace)


def test_device_dies_mid_operation():
    """The device answers during boot, then goes silent: a DeviceFail
    iteration after a healthy BootSeq."""
    plat = make_platform()
    mem = Memory.from_regions([(0x100000, bytes(C.RX_BUFFER_BYTES))])
    state = State(mem, {"buf": 0x100000})
    interp = Interpreter(PROG, ext=plat.ext_handler(), fuel=80_000_000)
    interp.exec_cmd(call(("e",), "lightbulb_init"), state)
    assert state.locals["e"] == 0
    plat.spi.rx_latency = 10**9  # device dies now
    interp.exec_cmd(call(("e",), "lightbulb_loop", var("buf")), state)
    assert state.locals["e"] != 0
    trace = to_mmio_triples(state.trace)
    assert SPEC.matches(trace)


def test_recovery_after_transient_failure():
    """The device comes back: failed iterations followed by a successful
    command -- the spec's star accommodates interleaved arms."""
    plat = make_platform()
    mem = Memory.from_regions([(0x100000, bytes(C.RX_BUFFER_BYTES))])
    state = State(mem, {"buf": 0x100000})
    interp = Interpreter(PROG, ext=plat.ext_handler(), fuel=80_000_000)
    interp.exec_cmd(call(("e",), "lightbulb_init"), state)
    plat.spi.rx_latency = 10**9
    interp.exec_cmd(call(("e",), "lightbulb_loop", var("buf")), state)
    assert state.locals["e"] != 0
    plat.spi.rx_latency = 1  # back to life
    plat.spi.rx_fifo.clear()  # transaction boundary re-sync
    plat.lan.chip_deselect()
    plat.lan.inject_frame(lightbulb_packet(True))
    for _ in range(3):
        interp.exec_cmd(call(("e",), "lightbulb_loop", var("buf")), state)
    assert plat.gpio.bulb_on
    trace = to_mmio_triples(state.trace)
    assert SPEC.matches(trace)


def test_boot_failure_on_machine_level():
    """The compiled system against a dead device: totality at machine
    level -- the processor returns to polling instead of wedging, and the
    trace stays in spec."""
    from repro.riscv.machine import RiscvMachine
    from repro.sw.program import compiled_lightbulb

    compiled = compiled_lightbulb(stack_top=1 << 16)
    plat = make_platform(power_up_reads=10**9)
    machine = RiscvMachine.with_program(compiled.image, mem_size=1 << 16,
                                        mmio_bus=plat.bus)
    machine.run(400_000)
    assert SPEC.prefix_of(machine.trace)
    # The event loop must still be alive (making progress, not wedged).
    before = machine.instret
    machine.run(50_000)
    assert machine.instret == before + 50_000
