"""Unit tests for the device models: bus, GPIO, SPI, LAN9250, packets."""


from repro.platform.bus import GPIO_BASE, MMIOBus, SPI_BASE
from repro.platform.gpio import GPIO_OUTPUT_EN, GPIO_OUTPUT_VAL, Gpio, LIGHTBULB_PIN
from repro.platform.lan9250 import (
    BYTE_TEST, BYTE_TEST_VALUE, CMD_FAST_READ, CMD_WRITE, HW_CFG,
    HW_CFG_READY, Lan9250, MAC_CR, MAC_CR_RXEN, MAC_CSR_BUSY, MAC_CSR_CMD,
    MAC_CSR_DATA, RESET_CTL, RX_DATA_FIFO, RX_FIFO_INF, RX_STATUS_FIFO,
)
from repro.platform.net import (
    ETHERTYPE_IPV4, OFF_CMD, OFF_ETHERTYPE, OFF_IP_PROTO, adversarial_stream,
    ipv4_header, is_valid_command, lightbulb_packet, non_udp_packet,
    oversize_packet, truncated_packet, wrong_ethertype_packet,
)
from repro.platform.spi import CSMODE_AUTO, CSMODE_HOLD, FLAG_BIT, Spi, SPI_CSMODE, SPI_RXDATA, SPI_TXDATA


# -- GPIO ---------------------------------------------------------------------

def test_gpio_bulb_requires_enable():
    gpio = Gpio()
    gpio.write(GPIO_OUTPUT_VAL, 1 << LIGHTBULB_PIN)
    assert not gpio.bulb_on  # output not enabled yet
    gpio.write(GPIO_OUTPUT_EN, 1 << LIGHTBULB_PIN)
    gpio.write(GPIO_OUTPUT_VAL, 1 << LIGHTBULB_PIN)
    assert gpio.bulb_on


def test_gpio_history_records_transitions():
    gpio = Gpio()
    gpio.write(GPIO_OUTPUT_EN, 1 << LIGHTBULB_PIN)
    gpio.write(GPIO_OUTPUT_VAL, 1 << LIGHTBULB_PIN)
    gpio.write(GPIO_OUTPUT_VAL, 1 << LIGHTBULB_PIN)  # no transition
    gpio.write(GPIO_OUTPUT_VAL, 0)
    assert gpio.bulb_history == [1, 0]


def test_gpio_readback():
    gpio = Gpio()
    gpio.write(GPIO_OUTPUT_EN, 0xABC)
    assert gpio.read(GPIO_OUTPUT_EN) == 0xABC


# -- MMIO bus -------------------------------------------------------------------

def test_bus_routing_and_ranges():
    gpio = Gpio()
    bus = MMIOBus([gpio])
    assert bus.is_mmio(GPIO_BASE)
    assert bus.is_mmio(SPI_BASE)
    assert not bus.is_mmio(0x1000)
    bus.write(GPIO_BASE + GPIO_OUTPUT_EN, 5)
    assert gpio.output_en == 5
    assert bus.read(GPIO_BASE + GPIO_OUTPUT_EN) == 5
    # Unmapped-but-in-range: reads 0, writes dropped.
    assert bus.read(SPI_BASE + 0x100) == 0


# -- SPI ------------------------------------------------------------------------

class EchoSlave:
    def __init__(self):
        self.received = []
        self.deselects = 0

    def exchange(self, b):
        self.received.append(b)
        return (b + 1) & 0xFF

    def chip_deselect(self):
        self.deselects += 1


def test_spi_exchange_roundtrip():
    slave = EchoSlave()
    spi = Spi(slave=slave, rx_latency=0)
    spi.write(SPI_TXDATA, 0x41)
    assert slave.received == [0x41]
    assert spi.read(SPI_RXDATA) == 0x42


def test_spi_rx_latency_forces_polling():
    spi = Spi(slave=EchoSlave(), rx_latency=2)
    spi.write(SPI_TXDATA, 1)
    assert spi.read(SPI_RXDATA) & FLAG_BIT   # first poll: not ready
    assert spi.read(SPI_RXDATA) & FLAG_BIT   # second poll: not ready
    assert spi.read(SPI_RXDATA) == 2         # now the byte


def test_spi_empty_rx_flag():
    spi = Spi(slave=EchoSlave())
    assert spi.read(SPI_RXDATA) & FLAG_BIT


def test_spi_fifo_full_flag_and_overrun():
    spi = Spi(slave=EchoSlave(), fifo_depth=2, rx_latency=0)
    spi.write(SPI_TXDATA, 1)
    spi.write(SPI_TXDATA, 2)
    assert spi.read(SPI_TXDATA) & FLAG_BIT  # full
    spi.write(SPI_TXDATA, 3)                # dropped
    assert len(spi.rx_fifo) == 2


def test_spi_csmode_deselect_notifies_slave():
    slave = EchoSlave()
    spi = Spi(slave=slave)
    spi.write(SPI_CSMODE, CSMODE_HOLD)
    spi.write(SPI_CSMODE, CSMODE_AUTO)
    assert slave.deselects == 1


# -- LAN9250 ---------------------------------------------------------------------

def spi_readword(lan, addr):
    """Drive the SPI protocol directly (fast read)."""
    lan.exchange(CMD_FAST_READ)
    lan.exchange((addr >> 8) & 0xFF)
    lan.exchange(addr & 0xFF)
    lan.exchange(0)  # dummy
    value = 0
    for i in range(4):
        value |= lan.exchange(0) << (8 * i)
    lan.chip_deselect()
    return value


def spi_writeword(lan, addr, value):
    lan.exchange(CMD_WRITE)
    lan.exchange((addr >> 8) & 0xFF)
    lan.exchange(addr & 0xFF)
    for i in range(4):
        lan.exchange((value >> (8 * i)) & 0xFF)
    lan.chip_deselect()


def booted_lan(**kwargs):
    lan = Lan9250(power_up_reads=0, **kwargs)
    spi_writeword(lan, MAC_CSR_DATA, MAC_CR_RXEN)
    spi_writeword(lan, MAC_CSR_CMD, MAC_CSR_BUSY | MAC_CR)
    assert lan.rx_enabled
    return lan


def test_byte_test_after_powerup():
    lan = Lan9250(power_up_reads=2)
    assert spi_readword(lan, BYTE_TEST) != BYTE_TEST_VALUE
    assert spi_readword(lan, BYTE_TEST) != BYTE_TEST_VALUE
    assert spi_readword(lan, BYTE_TEST) == BYTE_TEST_VALUE


def test_hw_cfg_ready_bit():
    lan = Lan9250(power_up_reads=1)
    assert not (spi_readword(lan, HW_CFG) & HW_CFG_READY)
    assert spi_readword(lan, HW_CFG) & HW_CFG_READY


def test_mac_csr_indirect_write_and_read():
    lan = Lan9250(power_up_reads=0)
    spi_writeword(lan, MAC_CSR_DATA, MAC_CR_RXEN)
    spi_writeword(lan, MAC_CSR_CMD, MAC_CSR_BUSY | MAC_CR)
    assert lan.mac_regs[MAC_CR] == MAC_CR_RXEN
    # Read command round-trips.
    spi_writeword(lan, MAC_CSR_CMD, MAC_CSR_BUSY | (1 << 30) | MAC_CR)
    assert spi_readword(lan, MAC_CSR_DATA) == MAC_CR_RXEN


def test_frames_dropped_until_rx_enabled():
    lan = Lan9250(power_up_reads=0)
    assert not lan.inject_frame(lightbulb_packet(True))
    assert lan.dropped_frames == 1


def test_frame_reception_full_path():
    lan = booted_lan()
    frame = lightbulb_packet(True)
    assert lan.inject_frame(frame)
    info = spi_readword(lan, RX_FIFO_INF)
    assert (info >> 16) & 0xFF == 1
    status = spi_readword(lan, RX_STATUS_FIFO)
    length = (status >> 16) & 0x3FFF
    assert length == len(frame)
    data = bytearray()
    for _ in range((length + 3) // 4):
        data += spi_readword(lan, RX_DATA_FIFO).to_bytes(4, "little")
    assert bytes(data[:length]) == frame
    # FIFO now empty.
    assert (spi_readword(lan, RX_FIFO_INF) >> 16) & 0xFF == 0


def test_multiple_frames_queue_in_order():
    lan = booted_lan()
    lan.inject_frame(lightbulb_packet(True))
    lan.inject_frame(lightbulb_packet(False))
    assert (spi_readword(lan, RX_FIFO_INF) >> 16) & 0xFF == 2
    first_len = (spi_readword(lan, RX_STATUS_FIFO) >> 16) & 0x3FFF
    for _ in range((first_len + 3) // 4):
        spi_readword(lan, RX_DATA_FIFO)
    assert (spi_readword(lan, RX_FIFO_INF) >> 16) & 0xFF == 1


def test_reset_clears_state():
    lan = Lan9250(power_up_reads=2)
    spi_readword(lan, BYTE_TEST)
    spi_readword(lan, BYTE_TEST)
    assert spi_readword(lan, BYTE_TEST) == BYTE_TEST_VALUE
    spi_writeword(lan, MAC_CSR_DATA, MAC_CR_RXEN)
    spi_writeword(lan, MAC_CSR_CMD, MAC_CSR_BUSY | MAC_CR)
    lan.inject_frame(lightbulb_packet(True))
    spi_writeword(lan, RESET_CTL, 1)
    assert not lan.rx_enabled
    assert not lan.frames
    assert spi_readword(lan, BYTE_TEST) != BYTE_TEST_VALUE  # powering up again


def test_oversize_frame_accepted_by_nic():
    # The NIC accepts jumbo frames -- protection is the driver's job.
    lan = booted_lan()
    assert lan.inject_frame(oversize_packet(2000))
    status = spi_readword(lan, RX_STATUS_FIFO)
    assert (status >> 16) & 0x3FFF == 2000


def test_unknown_spi_command_ignored():
    lan = booted_lan()
    assert lan.exchange(0x99) == 0xFF  # not a command: stays idle
    lan.chip_deselect()
    assert spi_readword(lan, BYTE_TEST) == BYTE_TEST_VALUE


# -- packets -----------------------------------------------------------------------

def test_lightbulb_packet_layout():
    frame = lightbulb_packet(True)
    assert (frame[OFF_ETHERTYPE] << 8 | frame[OFF_ETHERTYPE + 1]) == ETHERTYPE_IPV4
    assert frame[OFF_IP_PROTO] == 0x11
    assert frame[OFF_CMD] & 1 == 1
    assert lightbulb_packet(False)[OFF_CMD] & 1 == 0


def test_ip_checksum_folds():
    header = ipv4_header(8)
    total = 0
    for i in range(0, 20, 2):
        total += (header[i] << 8) | header[i + 1]
    while total >> 16:
        total = (total & 0xFFFF) + (total >> 16)
    assert total == 0xFFFF  # valid checksum sums to all-ones


def test_is_valid_command_spec():
    assert is_valid_command(lightbulb_packet(True)) is True
    assert is_valid_command(lightbulb_packet(False)) is False
    assert is_valid_command(truncated_packet()) is None
    assert is_valid_command(wrong_ethertype_packet()) is None
    assert is_valid_command(non_udp_packet()) is None
    assert is_valid_command(oversize_packet(2000)) is None


def test_adversarial_stream_is_deterministic():
    import random

    a = adversarial_stream(random.Random(7), 10)
    b = adversarial_stream(random.Random(7), 10)
    assert a == b
    assert len(a) == 10
