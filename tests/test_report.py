"""The self-contained HTML report (`repro.obs.report`) and the bench
history store it renders (`benchmarks/history.py`).

The report's contract: ONE html file, inline CSS, no scripts, no
external assets -- it must open from a CI artifact download with nothing
installed -- and every input is optional (a missing file degrades to an
in-page note, never a traceback).
"""

import contextlib
import io
import json
import os
import sys

import pytest

from repro import obs
from repro.__main__ import main
from repro.obs.report import build_report, effort_score
from repro.sw.verify import verify_doorlock

BENCH_DIR = os.path.join(os.path.dirname(__file__), os.pardir,
                         "benchmarks")


@pytest.fixture(autouse=True)
def _clean_obs():
    obs.disable()
    obs.REGISTRY.reset()
    yield
    obs.disable()
    obs.REGISTRY.reset()


@pytest.fixture()
def artifacts(tmp_path):
    """A real doorlock run's ledger + trace, exported to tmp files."""
    obs.enable(trace=True)
    obs.enable_ledger()
    verify_doorlock(jobs=2)
    ledger = str(tmp_path / "ledger.jsonl")
    trace = str(tmp_path / "trace.jsonl")
    obs.export_ledger(ledger)
    obs.export_trace(trace)
    return ledger, trace


def _history_dir(tmp_path):
    d = str(tmp_path / "history")
    os.makedirs(d)
    with open(os.path.join(d, "end2end.jsonl"), "w") as fh:
        for i, wall in enumerate([41.2, 40.8, 39.9]):
            fh.write(json.dumps({"t": "2026-08-0%dT00:00:00+00:00" % (i + 1),
                                 "sha": "abc1234",
                                 "results": {"theorem_isa": wall}}) + "\n")
    return d


def test_report_is_self_contained(artifacts, tmp_path):
    ledger, trace = artifacts
    html = build_report(ledger_path=ledger, trace_path=trace,
                        history_dir=_history_dir(tmp_path))
    assert html.startswith("<!DOCTYPE html>")
    # Self-contained: no scripts, no external fetches of any kind.
    assert "<script" not in html
    assert "http://" not in html and "https://" not in html
    assert 'src="' not in html and "@import" not in html
    # Dark mode is real, not an afterthought.
    assert "prefers-color-scheme" in html


def test_report_links_obligations_to_source_and_effort(artifacts,
                                                       tmp_path):
    ledger, trace = artifacts
    html = build_report(ledger_path=ledger, trace_path=trace)
    # Hot-obligation rows: function, source loc, fingerprint prefix.
    assert "doorlock_init" in html and "doorlock_loop" in html
    assert "repro/sw/doorlock.py:" in html
    records = [json.loads(line) for line in open(ledger)]
    hottest = max(records, key=effort_score)
    assert hottest["fp"][:12] in html      # short cell ...
    assert hottest["fp"] in html           # ... full hash in the tooltip
    # Timeline renders a lane per process: parent + 2 workers.
    assert html.count('class="lane"') >= 2
    assert "Discharge tiers" in html and "prescreen" in html


def test_report_degrades_per_missing_input(tmp_path):
    html = build_report(ledger_path=str(tmp_path / "no.jsonl"),
                        trace_path=None, history_dir=None)
    assert "absent" in html and "No bench history" in html
    assert "<table" not in html  # no fabricated data


def test_history_sparklines(tmp_path):
    html = build_report(history_dir=_history_dir(tmp_path))
    assert "end2end / theorem_isa" in html
    assert "<svg" in html and "polyline" in html
    assert "39.90s over 3 runs" in html


def test_effort_score_orders_by_conflicts_first():
    light = {"effort": {"conflicts": 0, "decisions": 500,
                        "cnf_clauses": 900}}
    heavy = {"effort": {"conflicts": 7, "decisions": 0, "cnf_clauses": 0}}
    assert effort_score(heavy) > effort_score(light)
    assert effort_score({}) == 0


# ------------------------------------------------------------------ CLI


def run_cli(*argv):
    out = io.StringIO()
    with contextlib.redirect_stdout(out):
        code = main(list(argv))
    return code, out.getvalue()


def test_cli_verify_ledger_out_then_report(tmp_path):
    ledger = str(tmp_path / "ledger.jsonl")
    trace = str(tmp_path / "trace.jsonl")
    report = str(tmp_path / "report.html")
    code, out = run_cli("verify", "--jobs", "2",
                        "--ledger-out", ledger, "--trace-out", trace)
    assert code == 0
    assert "obligation records" in out and "verification ledger" in out
    code, out = run_cli("report", "-o", report, "--ledger", ledger,
                        "--trace", trace)
    assert code == 0
    html = open(report).read()
    assert "lan9250_drain" in html and "<script" not in html


def test_cli_report_runs_on_missing_inputs(tmp_path):
    report = str(tmp_path / "report.html")
    code, _out = run_cli("report", "-o", report,
                         "--ledger", str(tmp_path / "no-ledger.jsonl"),
                         "--trace", str(tmp_path / "no-trace.jsonl"),
                         "--history", str(tmp_path / "no-history"))
    assert code == 0
    assert os.path.exists(report)


def test_cli_check_supports_trace_out(tmp_path):
    trace = str(tmp_path / "trace.jsonl")
    code, out = run_cli("check", "--trace-out", trace)
    assert code == 0
    assert os.path.exists(trace)
    events = [json.loads(line) for line in open(trace)]
    assert any(e.get("ph") == "B" for e in events)


# ------------------------------------------------------- history store


def test_history_append_and_load(tmp_path):
    sys.path.insert(0, BENCH_DIR)
    try:
        import history
    finally:
        sys.path.pop(0)
    d = str(tmp_path / "hist")
    path = history.append_record("bench", {"a": 1.23456, "b": 2.0},
                                 history_dir=d, t="2026-08-09T00:00:00+00:00",
                                 sha="deadbee")
    history.append_record("bench", {"a": 1.2}, history_dir=d,
                          t="2026-08-10T00:00:00+00:00", sha="deadbef")
    assert path == os.path.join(d, "bench.jsonl")
    loaded = history.load_history(d)
    assert list(loaded) == ["bench"]
    assert loaded["bench"][0]["results"] == {"a": 1.2346, "b": 2.0}
    assert [e["sha"] for e in loaded["bench"]] == ["deadbee", "deadbef"]


def test_check_regression_update_history(tmp_path):
    sys.path.insert(0, BENCH_DIR)
    try:
        import check_regression
    finally:
        sys.path.pop(0)
    record = str(tmp_path / "BENCH_x.json")
    with open(record, "w") as fh:
        json.dump({"benchmark": "end2end",
                   "results": [{"name": "theorem_isa",
                                "wall_seconds": 1.0}]}, fh)
    baselines = str(tmp_path / "baselines.json")
    with open(baselines, "w") as fh:
        json.dump({"benchmarks": {"end2end": {"theorem_isa": 1.0}}}, fh)
    d = str(tmp_path / "hist")
    out = io.StringIO()
    with contextlib.redirect_stdout(out):
        code = check_regression.main([record, "--baselines", baselines,
                                      "--update-history", d])
    assert code == 0
    assert "appended end2end run" in out.getvalue()
    entries = [json.loads(line)
               for line in open(os.path.join(d, "end2end.jsonl"))]
    assert entries[0]["results"] == {"theorem_isa": 1.0}
