"""Unit tests for the Kami memory module (byte enables, MMIO forwarding,
address wrap-around -- paper sections 5.5, 5.8, 6.4) and the world adapter
that shares device models between the Kami and ISA sides."""

import pytest

from repro.kami.framework import ExternalWorld, Module, RuleAbort, System
from repro.kami.memory import make_memory_module, ram_snapshot
from repro.platform.bus import KamiWorldAdapter, MMIOBus
from repro.platform.gpio import GPIO_OUTPUT_EN, Gpio


class RecordingWorld(ExternalWorld):
    def __init__(self):
        self.calls = []

    def call(self, method, args):
        self.calls.append((method, args))
        if method == "mmioRead":
            return 0x1234
        return None


def harness(image=b"", ram_words=16):
    mem = make_memory_module(image, ram_words=ram_words)
    driver = Module("drv")
    driver.reg("out", None)

    def run(fn):
        driver.regs["todo"] = fn
        system = System([mem, driver], RecordingWorld())
        return system

    return mem, driver, run


def make_system(image=b"", ram_words=16):
    mem = make_memory_module(image, ram_words=ram_words)
    system = System([mem], RecordingWorld())
    return mem, system


def test_image_loaded_little_endian():
    mem, system = make_system(image=bytes([0x11, 0x22, 0x33, 0x44, 0x55]))
    assert system.call("memFetch", 0) == 0x44332211
    assert system.call("memFetch", 4) == 0x55  # zero padded


def test_fetch_wraps_modulo_ram_size():
    mem, system = make_system(image=b"\xaa\x00\x00\x00", ram_words=16)
    assert system.call("memFetch", 16 * 4) == 0xAA  # wraps to word 0


def test_byte_enables_merge():
    mem, system = make_system(ram_words=16)
    system.call("memWrite", 0, 0xAABBCCDD, 0b1111)
    system.call("memWrite", 0, 0x000000EE, 0b0001)
    assert system.call("memRead", 0) == 0xAABBCCEE
    system.call("memWrite", 0, 0x11220000, 0b1100)
    assert system.call("memRead", 0) == 0x1122CCEE


def test_out_of_ram_forwards_to_mmio():
    mem, system = make_system(ram_words=16)
    value = system.call("memRead", 0x10012000)
    assert value == 0x1234
    system.call("memWrite", 0x10012008, 7, 0b1111)
    assert ("mmioWrite", (0x10012008, 7)) in system.external.calls


def test_subword_mmio_store_is_disabled():
    mem, system = make_system(ram_words=16)
    with pytest.raises(RuleAbort):
        system.call("memWrite", 0x10012000, 7, 0b0001)


def test_mem_is_ram_boundary():
    mem, system = make_system(ram_words=16)
    assert system.call("memIsRam", 0) == 1
    assert system.call("memIsRam", 16 * 4 - 1) == 1
    assert system.call("memIsRam", 16 * 4) == 0


def test_ram_snapshot_is_a_copy():
    mem, system = make_system(image=b"\x01\x00\x00\x00")
    snap = ram_snapshot(mem)
    snap[0] = 999
    assert system.call("memRead", 0) == 1


# -- the world adapter ---------------------------------------------------------------

def test_world_adapter_routes_to_devices():
    gpio = Gpio()
    bus = MMIOBus([gpio])
    adapter = KamiWorldAdapter(bus)
    adapter.call("mmioWrite", (gpio.base + GPIO_OUTPUT_EN, 0x42))
    assert gpio.output_en == 0x42
    assert adapter.call("mmioRead", (gpio.base + GPIO_OUTPUT_EN,)) == 0x42


def test_world_adapter_rejects_unknown_methods():
    adapter = KamiWorldAdapter(MMIOBus([]))
    with pytest.raises(KeyError):
        adapter.call("dmaBurst", (0,))


def test_fe310_machine_counts_cycles_as_instructions():
    from repro.platform.fe310 import make_fe310_system
    from repro.riscv import insts as I
    from repro.riscv.encode import encode_program

    image = encode_program([I.i_type("addi", 1, 0, 1)] * 10 + [I.jal(0, 0)])
    machine = make_fe310_system(image, MMIOBus([]), mem_size=1 << 12)
    machine.run(10)
    assert machine.cycles == machine.instret == 10
