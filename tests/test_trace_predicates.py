"""Unit and property tests for the trace-predicate combinators."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.traces.predicates import (
    Epsilon, Exists, Guard, Never, RepeatN, Star, capture, event, ld, seq,
    st as st_, union, value_is, value_where,
)


def LD(addr, val=0):
    return ("ld", addr, val)


def ST(addr, val=0):
    return ("st", addr, val)


def any_ld(addr):
    return ld(addr)


def test_epsilon():
    assert Epsilon().matches([])
    assert not Epsilon().matches([LD(0)])
    assert Epsilon().prefix_of([])
    assert not Epsilon().prefix_of([LD(0)])


def test_never():
    assert not Never().matches([])
    assert not Never().prefix_of([])


def test_single_event():
    p = ld(0x100, value_is(7))
    assert p.matches([LD(0x100, 7)])
    assert not p.matches([LD(0x100, 8)])
    assert not p.matches([ST(0x100, 7)])
    assert not p.matches([])
    assert not p.matches([LD(0x100, 7), LD(0x100, 7)])


def test_prefix_of_single():
    p = ld(0x100, value_is(7))
    assert p.prefix_of([])          # the event may still come
    assert p.prefix_of([LD(0x100, 7)])
    assert not p.prefix_of([LD(0x200, 7)])


def test_concat():
    p = ld(1) + st_(2)
    assert p.matches([LD(1), ST(2)])
    assert not p.matches([ST(2), LD(1)])
    assert p.prefix_of([LD(1)])
    assert not p.prefix_of([ST(2)])


def test_union():
    p = ld(1) | st_(2)
    assert p.matches([LD(1)])
    assert p.matches([ST(2)])
    assert not p.matches([LD(3)])


def test_star():
    p = Star(ld(1))
    assert p.matches([])
    assert p.matches([LD(1)] * 5)
    assert not p.matches([LD(1), ST(1)])
    assert p.prefix_of([LD(1)] * 3)


def test_star_of_compound():
    p = Star(ld(1) + st_(2))
    assert p.matches([LD(1), ST(2)] * 3)
    assert not p.matches([LD(1), ST(2), LD(1)])
    assert p.prefix_of([LD(1), ST(2), LD(1)])  # mid-iteration


def test_exists_binds_witness():
    p = Exists("b", (0, 1), lambda b: ld(0x10, value_is(b)) + st_(0x20, value_is(b)))
    assert p.matches([LD(0x10, 1), ST(0x20, 1)])
    assert p.matches([LD(0x10, 0), ST(0x20, 0)])
    assert not p.matches([LD(0x10, 1), ST(0x20, 0)])  # witness must agree


def test_capture_and_guard():
    p = seq(ld(0x10, capture("v")),
            st_(0x20, capture("w")),
            Guard(lambda env: env["w"] == env["v"] + 1))
    assert p.matches([LD(0x10, 5), ST(0x20, 6)])
    assert not p.matches([LD(0x10, 5), ST(0x20, 7)])


def test_repeat_n_data_dependent():
    p = seq(ld(0x10, capture("n")),
            RepeatN(lambda env: env["n"], lambda i: ld(0x20)))
    assert p.matches([LD(0x10, 3), LD(0x20), LD(0x20), LD(0x20)])
    assert not p.matches([LD(0x10, 3), LD(0x20), LD(0x20)])
    assert p.prefix_of([LD(0x10, 3), LD(0x20)])


def test_repeat_n_per_index_body():
    p = seq(ld(0x10, capture("n")),
            RepeatN(lambda env: env["n"],
                    lambda i: ld(0x20, value_is(i))))
    assert p.matches([LD(0x10, 2), LD(0x20, 0), LD(0x20, 1)])
    assert not p.matches([LD(0x10, 2), LD(0x20, 1), LD(0x20, 0)])


def test_ambiguous_concat_backtracks():
    # (a* +++ a) requires at least one a: the split search must backtrack.
    p = Star(ld(1)) + ld(1)
    assert p.matches([LD(1)])
    assert p.matches([LD(1)] * 4)
    assert not p.matches([])


def test_value_where():
    p = ld(1, value_where(lambda v: v % 2 == 0))
    assert p.matches([LD(1, 4)])
    assert not p.matches([LD(1, 5)])


def test_nested_star_union():
    p = Star(union(ld(1), st_(2) + st_(3)))
    assert p.matches([LD(1), ST(2), ST(3), LD(1)])
    assert not p.matches([ST(2), LD(1)])
    assert p.prefix_of([LD(1), ST(2)])


# -- properties ---------------------------------------------------------------

addresses = st.sampled_from([1, 2, 3])
events = st.tuples(st.sampled_from(["ld", "st"]), addresses,
                   st.integers(0, 3))


@st.composite
def preds(draw, depth=2):
    kind = draw(st.sampled_from(
        ["event", "concat", "union", "star"] if depth > 0 else ["event"]))
    if kind == "event":
        k = draw(st.sampled_from(["ld", "st"]))
        a = draw(addresses)
        return event(k, a)
    if kind == "concat":
        return draw(preds(depth=depth - 1)) + draw(preds(depth=depth - 1))
    if kind == "union":
        return draw(preds(depth=depth - 1)) | draw(preds(depth=depth - 1))
    return Star(draw(preds(depth=depth - 1)))


@settings(max_examples=120, deadline=None)
@given(preds(), st.lists(events, max_size=5))
def test_match_implies_every_prefix_admissible(pred, trace):
    """Soundness of `prefix_of` against `matches`: if a trace matches, all
    its prefixes must be admissible prefixes."""
    trace = list(trace)
    if pred.matches(trace):
        for k in range(len(trace) + 1):
            assert pred.prefix_of(trace[:k])


@settings(max_examples=120, deadline=None)
@given(preds(), st.lists(events, max_size=4))
def test_residual_lengths_are_consistent(pred, trace):
    """Every residual endpoint reported really delimits a matching slice."""
    trace = list(trace)
    for end, _ in pred.residuals(trace, 0, {}):
        assert 0 <= end <= len(trace)
        assert pred.matches(trace[:end])


ALPHABET = [("ld", 1, 0), ("ld", 2, 0), ("st", 1, 0), ("st", 2, 0),
            ("ld", 3, 0), ("st", 3, 0)]


def _some_extension_matches(pred, trace, depth):
    if pred.matches(trace):
        return True
    if depth == 0:
        return False
    return any(_some_extension_matches(pred, trace + [ev], depth - 1)
               for ev in ALPHABET)


@settings(max_examples=80, deadline=None)
@given(preds(depth=2), st.lists(st.sampled_from(ALPHABET), max_size=3))
def test_partial_agrees_with_bounded_extension_search(pred, trace):
    """`prefix_of` vs ground truth: for small predicates over a small
    alphabet, trace is a prefix iff some bounded extension matches.
    (Extensions are searched to depth 4, which covers every predicate the
    strategy can generate except deep concatenations -- for those the
    search may be incomplete, so only the 'partial=False' direction is
    asserted unconditionally.)"""
    trace = list(trace)
    claims = pred.prefix_of(trace)
    found = _some_extension_matches(pred, trace, depth=4)
    if found:
        assert claims, "a matching extension exists but prefix_of said no"
    if not claims:
        assert not found
