"""Unit tests for the program logic (vcgen): symbolic execution, loop
invariants, contracts, memory regions, external-call obligations."""

import pytest

from repro.bedrock2.builder import (
    block, call, func, if_, interact, lit, load1, load4, set_, skip,
    stackalloc, store4, var, while_,
)
from repro.bedrock2.extspec import MMIOSpec
from repro.bedrock2.vcgen import (
    Contract, FunctionSpec, LoopSpec, Region, SymEvent, TraceHole,
    VerificationError, verify_function,
)
from repro.logic import terms as T

MMIO = MMIOSpec([(0x10012000, 0x10013000), (0x10024000, 0x10025000)])


def verify(prog, name, spec, contracts=None, **kwargs):
    return verify_function(prog, name, spec, MMIO, contracts=contracts,
                           **kwargs)


# -- straight-line functional verification -----------------------------------------

def test_verifies_arithmetic_identity():
    prog = {"f": func("f", ("x",), ("r",), set_("r", (var("x") + 1) - 1))}

    def post(vc, state, args, rets):
        vc.prove(state, T.eq(rets[0], args[0]), "post")

    report = verify(prog, "f", FunctionSpec(post=post))
    assert report.paths == 1


def test_detects_wrong_postcondition():
    prog = {"f": func("f", ("x",), ("r",), set_("r", var("x") + 1))}

    def post(vc, state, args, rets):
        vc.prove(state, T.eq(rets[0], args[0]), "post")

    with pytest.raises(VerificationError) as err:
        verify(prog, "f", FunctionSpec(post=post))
    assert err.value.model is not None  # countermodel included


def test_branches_explored_both_ways():
    prog = {"f": func("f", ("x",), ("r",),
                      if_(var("x") < 10, set_("r", lit(1)), set_("r", lit(2))))}

    def post(vc, state, args, rets):
        vc.prove(state, T.or_(T.eq(rets[0], T.const(1)),
                              T.eq(rets[0], T.const(2))), "post")

    report = verify(prog, "f", FunctionSpec(post=post))
    assert report.paths == 2


def test_infeasible_branch_pruned():
    prog = {"f": func("f", (), ("r",), block(
        set_("x", lit(3)),
        if_(var("x") < 10, set_("r", lit(1)), set_("r", lit(2)))))}
    report = verify(prog, "f", FunctionSpec())
    assert report.paths == 1  # constant condition: else is dead


# -- memory ------------------------------------------------------------------------

def region_pre(size=16):
    def pre(vc, state, args):
        buf = args[0]
        state.assume(T.eq(T.band(buf, T.const(3)), T.const(0)))
        state.assume(T.ule(buf, T.const(0xFFFFFFFF - size)))
        state.regions["buf"] = Region("buf", buf, size,
                                      [vc.fresh("b%d" % i, 8)
                                       for i in range(size)])
    return pre


def test_in_bounds_concrete_store_load():
    prog = {"f": func("f", ("p",), ("r",), block(
        store4(var("p") + 4, lit(0xAABBCCDD)),
        set_("r", load4(var("p") + 4))))}

    def post(vc, state, args, rets):
        vc.prove(state, T.eq(rets[0], T.const(0xAABBCCDD)), "roundtrip")

    verify(prog, "f", FunctionSpec(pre=region_pre(), post=post))


def test_out_of_bounds_store_rejected():
    prog = {"f": func("f", ("p",), (), store4(var("p") + 16, lit(1)))}
    with pytest.raises(VerificationError):
        verify(prog, "f", FunctionSpec(pre=region_pre(16)))


def test_misaligned_store_rejected():
    prog = {"f": func("f", ("p",), (), store4(var("p") + 2, lit(1)))}
    with pytest.raises(VerificationError):
        verify(prog, "f", FunctionSpec(pre=region_pre(16)))


def test_byte_access_any_offset():
    prog = {"f": func("f", ("p",), ("r",), set_("r", load1(var("p") + 15)))}

    def post(vc, state, args, rets):
        vc.prove(state, T.ule(rets[0], T.const(0xFF)), "byte range")

    verify(prog, "f", FunctionSpec(pre=region_pre(16), post=post))


def test_symbolic_offset_store_in_bounds():
    # p[i] for i < 4 words: provable with the hypothesis in pre.
    prog = {"f": func("f", ("p", "i"), (), store4(var("p") + (var("i") << 2),
                                                  lit(7)))}

    def pre(vc, state, args):
        region_pre(16)(vc, state, args)
        state.assume(T.ult(args[1], T.const(4)))

    verify(prog, "f", FunctionSpec(pre=pre))


def test_symbolic_offset_store_unbounded_rejected():
    prog = {"f": func("f", ("p", "i"), (), store4(var("p") + (var("i") << 2),
                                                  lit(7)))}
    with pytest.raises(VerificationError):
        verify(prog, "f", FunctionSpec(pre=region_pre(16)))


def test_stackalloc_region_scoped():
    prog = {"f": func("f", (), ("r",), block(
        stackalloc("p", 8, block(store4(var("p"), lit(3)),
                                 set_("r", load4(var("p"))))),
    ))}

    def post(vc, state, args, rets):
        vc.prove(state, T.eq(rets[0], T.const(3)), "post")
        assert not state.regions  # deallocated at scope exit

    verify(prog, "f", FunctionSpec(post=post))


def test_use_after_stackalloc_scope_rejected():
    prog = {"f": func("f", (), ("r",), block(
        stackalloc("p", 8, skip()),
        set_("r", load4(var("p")))))}
    with pytest.raises(VerificationError):
        verify(prog, "f", FunctionSpec())


# -- external calls -------------------------------------------------------------------

def test_mmio_range_obligation():
    ok = {"f": func("f", (), (), interact([], "MMIOWRITE", lit(0x10012008),
                                          lit(1)))}
    verify(ok, "f", FunctionSpec())
    bad = {"f": func("f", (), (), interact([], "MMIOWRITE", lit(0x20000000),
                                           lit(1)))}
    with pytest.raises(VerificationError):
        verify(bad, "f", FunctionSpec())


def test_mmio_alignment_obligation():
    bad = {"f": func("f", (), (), interact([], "MMIOWRITE", lit(0x10012002),
                                           lit(1)))}
    with pytest.raises(VerificationError):
        verify(bad, "f", FunctionSpec())


def test_mmio_read_value_universally_quantified():
    # The postcondition must hold for every value the device may return.
    prog = {"f": func("f", (), ("r",),
                      interact(["r"], "MMIOREAD", lit(0x10024048)))}

    def post_any(vc, state, args, rets):
        vc.prove(state, T.ule(rets[0], T.const(0xFFFFFFFF)), "trivial")

    verify(prog, "f", FunctionSpec(post=post_any))

    def post_specific(vc, state, args, rets):
        vc.prove(state, T.eq(rets[0], T.const(7)), "specific")

    with pytest.raises(VerificationError):
        verify(prog, "f", FunctionSpec(post=post_specific))


def test_trace_records_symbolic_events():
    prog = {"f": func("f", (), (), block(
        interact(["v"], "MMIOREAD", lit(0x10024048)),
        interact([], "MMIOWRITE", lit(0x1002404C), var("v"))))}

    def post(vc, state, args, rets):
        assert len(state.trace) == 2
        read, write = state.trace
        assert isinstance(read, SymEvent) and read.action == "MMIOREAD"
        assert isinstance(write, SymEvent) and write.action == "MMIOWRITE"
        # The written value IS the read value, symbolically.
        vc.prove(state, T.eq(write.args[1], read.rets[0]), "echo")

    verify(prog, "f", FunctionSpec(post=post))


# -- loops -------------------------------------------------------------------------------

def counting_loop(spec):
    return {"f": func("f", ("n",), ("s",), block(
        set_("s", lit(0)), set_("i", lit(0)),
        while_(var("i") < var("n"), block(
            set_("s", var("s") + 1),
            set_("i", var("i") + 1)), spec=spec)))}


def test_loop_with_invariant_and_measure():
    spec = LoopSpec(
        invariant=lambda st: T.and_(
            T.ule(st.locals["i"], st.locals["n"]),
            T.eq(st.locals["s"], st.locals["i"])),
        measure=lambda st: T.sub(st.locals["n"], st.locals["i"]))

    def pre(vc, state, args):
        state.assume(T.ult(args[0], T.const(1 << 30)))  # no wraparound

    def post(vc, state, args, rets):
        vc.prove(state, T.eq(rets[0], args[0]), "sum equals n")

    verify(counting_loop(spec), "f", FunctionSpec(pre=pre, post=post))


def test_loop_invariant_not_inductive_rejected():
    spec = LoopSpec(
        invariant=lambda st: T.eq(st.locals["s"], T.const(0)),  # broken
        measure=lambda st: T.sub(st.locals["n"], st.locals["i"]))
    with pytest.raises(VerificationError) as err:
        verify(counting_loop(spec), "f", FunctionSpec())
    assert "inv-preserved" in err.value.context


def test_loop_measure_must_decrease():
    prog = {"f": func("f", ("n",), (), block(
        set_("i", lit(0)),
        while_(var("i") < var("n"), skip(),  # no progress!
               spec=LoopSpec(invariant=lambda st: T.TRUE,
                             measure=lambda st: T.sub(st.locals["n"],
                                                      st.locals["i"])))))}
    with pytest.raises(VerificationError) as err:
        verify(prog, "f", FunctionSpec())
    assert "measure" in err.value.context


def test_loop_event_filter_enforced():
    prog = {"f": func("f", ("n",), (), block(
        set_("i", var("n")),
        while_(var("i"), block(
            interact([], "MMIOWRITE", lit(0x10012008), lit(1)),
            set_("i", var("i") - 1)),
            spec=LoopSpec(
                invariant=lambda st: T.TRUE,
                measure=lambda st: st.locals["i"],
                event_filter=_only_reads))))}
    with pytest.raises(VerificationError):
        verify(prog, "f", FunctionSpec())


def _only_reads(vc, state, event, ctx):
    if not (isinstance(event, SymEvent) and event.action == "MMIOREAD"):
        raise VerificationError(ctx, "loop may only read")


def test_bounded_unrolling_without_spec():
    prog = {"f": func("f", (), ("s",), block(
        set_("s", lit(0)), set_("i", lit(4)),
        while_(var("i"), block(set_("s", var("s") + 2),
                               set_("i", var("i") - 1)))))}

    def post(vc, state, args, rets):
        vc.prove(state, T.eq(rets[0], T.const(8)), "unrolled sum")

    verify(prog, "f", FunctionSpec(post=post))


def test_unbounded_loop_without_spec_rejected():
    prog = {"f": func("f", ("n",), (), block(
        set_("i", var("n")),
        while_(var("i"), set_("i", var("i") - 1))))}
    with pytest.raises(VerificationError) as err:
        verify(prog, "f", FunctionSpec(), unroll_limit=8)
    assert "unroll" in str(err.value)


# -- contracts (modularity) -----------------------------------------------------------

def test_contract_replaces_callee():
    prog = {
        "helper": func("helper", ("a",), ("b",), set_("b", var("a") + 1)),
        "f": func("f", ("x",), ("r",), call(("r",), "helper", var("x"))),
    }
    contract = Contract(
        "helper",
        post=lambda vc, state, args, rets, ctx: state.assume(
            T.eq(rets[0], T.add(args[0], T.const(1)))))

    def post(vc, state, args, rets):
        vc.prove(state, T.eq(rets[0], T.add(args[0], T.const(1))), "post")

    verify(prog, "f", FunctionSpec(post=post),
           contracts={"helper": contract})


def test_contract_pre_obligation_at_call_site():
    prog = {
        "helper": func("helper", ("a",), ("b",), set_("b", var("a"))),
        "f": func("f", ("x",), ("r",), call(("r",), "helper", var("x"))),
    }
    contract = Contract(
        "helper",
        pre=lambda vc, state, args, ctx: vc.prove(
            state, T.ult(args[0], T.const(10)), ctx + "/arg<10"))
    with pytest.raises(VerificationError):
        verify(prog, "f", FunctionSpec(), contracts={"helper": contract})


def test_contract_trace_effect_appends_hole():
    prog = {
        "io": func("io", (), (), interact([], "MMIOWRITE", lit(0x10012008),
                                          lit(1))),
        "f": func("f", (), (), call((), "io")),
    }
    contract = Contract("io", trace_effect=lambda args, rets: [TraceHole("io")])

    def post(vc, state, args, rets):
        assert state.trace == [TraceHole("io")]

    verify(prog, "f", FunctionSpec(post=post), contracts={"io": contract})


def test_uncontracted_callee_is_inlined():
    prog = {
        "sq": func("sq", ("a",), ("b",), set_("b", var("a") * var("a"))),
        "f": func("f", (), ("r",), call(("r",), "sq", lit(5))),
    }

    def post(vc, state, args, rets):
        vc.prove(state, T.eq(rets[0], T.const(25)), "post")

    verify(prog, "f", FunctionSpec(post=post))
