"""The famous obligation, isolated (docs/verification.md's claims).

The drain loop's in-bounds store condition, stated directly as formulas:
with the caller's bound (n <= 1520) it is valid; with only the status-field
width (n <= 0x3FFF) it is falsifiable, and the countermodel is a concrete
oversize frame length -- the paper's prototype exploit, as arithmetic."""

from repro.logic import check_valid, terms as T


def drain_obligation(n_bound: int):
    """hypotheses |- 4*i <= 1516, under i < (n+3)>>2 and n <= n_bound."""
    n = T.var("n")
    i = T.var("i")
    num_words = T.lshr(T.add(n, T.const(3)), T.const(2))
    hyps = [T.ult(i, num_words), T.ule(n, T.const(n_bound))]
    goal = T.ule(T.shl(i, T.const(2)), T.const(1516))
    return goal, hyps


def test_with_length_check_the_store_is_safe():
    goal, hyps = drain_obligation(1520)
    assert check_valid(goal, hyps).valid


def test_without_length_check_the_store_is_exploitable():
    goal, hyps = drain_obligation(0x3FFF)
    result = check_valid(goal, hyps)
    assert not result.valid
    # The countermodel is a concrete attack: a frame longer than the buffer.
    n, i = result.model["n"], result.model["i"]
    assert n > 1520
    assert i < ((n + 3) >> 2) and 4 * i > 1516


def test_boundary_is_exact():
    # 1521 already admits an overflowing index; 1520 is tight.
    goal, hyps = drain_obligation(1521)
    result = check_valid(goal, hyps)
    assert not result.valid
    assert result.model["n"] == 1521


def test_alignment_half_of_the_obligation():
    buf = T.var("buf")
    i = T.var("i")
    addr = T.add(buf, T.shl(i, T.const(2)))
    aligned = T.eq(T.band(addr, T.const(3)), T.const(0))
    # Unprovable without buf's alignment...
    assert not check_valid(aligned).valid
    # ...valid with it.
    assert check_valid(aligned,
                       [T.eq(T.band(buf, T.const(3)), T.const(0))]).valid
