"""Static WCET & stack-bound analyzer (tier-1).

The analyzer (`repro.analysis.wcet`) claims to *prove* cycle and stack
bounds for RV32IM binaries against the p4mm-calibrated cost model
(`repro.analysis.costmodel`). This suite holds it to that claim:

* the cost model matches the live pipeline (drift check clean, and a
  deliberately miscalibrated model is caught as B2A205);
* both shipped apps prove with zero findings, inside the committed
  ``timing-budgets.json``, with the stack bound agreeing exactly with
  the compiler's own frame accounting;
* recursion and data-dependent loops are rejected (B2A202 / B2A201),
  never silently "bounded";
* inferred fuel-loop bounds match the generator's ground truth
  (exactly for most seeds; a subsequence when dead loops are pruned);
* the bounds are *dynamically sound*: measured pipeline cycles and the
  runtime stack watermark never exceed the static bounds, on both the
  reference interpreter and the fast engine (which must agree on the
  watermark bit-for-bit).
"""

import json
import os
from types import SimpleNamespace

import pytest

from repro.analysis.binlint import BinaryLintConfig
from repro.analysis.costmodel import (CostModel, check_pipeline_drift,
                                      mispredict_penalty_for,
                                      pipeline_cost_model)
from repro.analysis.wcet import (ANNOTATED, INFERRED, TimingConfig,
                                 analyze_timing, check_budgets,
                                 drift_findings, load_budgets)
from repro.compiler.pipeline import compile_program
from repro.fuzz.generator import (DEV_BASE, DEV_SIZE, fuel_bounds,
                                  generate_program)
from repro.platform.bus import MMIO_RANGES
from repro.sw.doorlock import doorlock_program
from repro.sw.program import compiled_lightbulb

STACK_TOP = 1 << 16
BUDGETS_PATH = os.path.join(os.path.dirname(os.path.dirname(
    os.path.abspath(__file__))), "timing-budgets.json")


def _fuzz_config():
    return TimingConfig(
        lint=BinaryLintConfig.for_platform(
            STACK_TOP, ((DEV_BASE, DEV_BASE + DEV_SIZE),)),
        model=pipeline_cost_model(strict=False))


def _app_report(name):
    loop_bounds, budgets = load_budgets(BUDGETS_PATH)
    if name == "lightbulb":
        compiled = compiled_lightbulb(stack_top=STACK_TOP)
    else:
        compiled = compile_program(doorlock_program(), entry="main",
                                   stack_top=STACK_TOP)
    config = TimingConfig(
        lint=BinaryLintConfig.for_platform(compiled.stack_top, MMIO_RANGES),
        model=pipeline_cost_model(strict=False),
        loop_bounds=loop_bounds)
    return analyze_timing(compiled, config), compiled, budgets.get(name, {})


# -- cost model ---------------------------------------------------------------


def test_cost_model_matches_live_pipeline():
    model = pipeline_cost_model()  # strict: raises on drift
    assert model.base_cpi == 4
    assert model.mispredict_penalty == mispredict_penalty_for(
        model.fifo_depth)
    assert check_pipeline_drift(model) == []
    assert drift_findings() == []


def test_cost_model_drift_is_caught():
    """A miscalibrated model cannot produce silently unsound bounds:
    every perturbed constant shows up as at least one drift message."""
    for field, value in (("fifo_depth", 3), ("mispredict_penalty", 5),
                         ("base_cpi", 5)):
        model = CostModel(**{field: value})
        drift = check_pipeline_drift(model)
        assert drift, "perturbing %s went undetected" % field
        findings = drift_findings(model)
        assert findings and all(d.code == "B2A205" for d in findings)


def test_block_cost_charges_control_transfers():
    model = CostModel()
    straight = model.block_cost(5, control_transfer=False)
    taken = model.block_cost(5, control_transfer=True)
    assert straight == 5 * model.base_cpi
    assert taken - straight == model.mispredict_penalty
    assert model.fill_cost(10) == 10 * model.fill_per_word


# -- committed budgets file ---------------------------------------------------


def test_budgets_file_parses():
    loop_bounds, apps = load_budgets(BUDGETS_PATH)
    assert loop_bounds["func.lan9250_drain"][0] == 380
    assert set(apps) == {"lightbulb", "doorlock"}
    for budget in apps.values():
        assert {"startup_cycles", "iteration_cycles", "stack_bytes"} <= set(budget)


# -- shipped apps -------------------------------------------------------------


@pytest.mark.parametrize("app", ["lightbulb", "doorlock"])
def test_shipped_app_proves_within_budgets(app):
    report, compiled, budget = _app_report(app)
    assert report.findings == []
    assert check_budgets(report, budget) == []
    # The event loop never returns: server-shaped program bounds.
    assert report.wcet_cycles is None
    assert 0 < report.startup_cycles <= budget["startup_cycles"]
    assert 0 < report.iteration_cycles <= budget["iteration_cycles"]
    # Interprocedural stack bound agrees exactly with the compiler's
    # own frame accounting -- two independent computations of the same
    # quantity.
    assert report.stack_bound == compiled.stack_bound
    assert report.stack_bound <= budget["stack_bytes"]


def test_lightbulb_drain_loop_uses_annotation():
    """The LAN9250 drain loop is data-dependent (bounded by the RX fifo,
    not a fuel counter); it must be priced from the committed flow fact,
    not guessed."""
    report, _, _ = _app_report("lightbulb")
    drain = report.functions["func.lan9250_drain"]
    annotated = [lp for lp in drain.loops if lp.source == ANNOTATED]
    assert [lp.bound for lp in annotated] == [380]


def test_shipped_app_to_json_round_trips():
    report, _, _ = _app_report("doorlock")
    doc = json.loads(json.dumps(report.to_json()))
    assert doc["stack_bound"] == report.stack_bound
    assert doc["iteration_cycles"] == report.iteration_cycles
    assert set(doc["functions"]) == set(report.functions)


# -- rejection: no silent bounds ---------------------------------------------


def test_recursion_rejected():
    """Self-recursion in a hand-assembled binary (the compiler refuses
    to emit one) is rejected for both WCET and stack."""
    from repro.riscv.encode import encode_program
    from repro.riscv.insts import Instr

    image = encode_program([
        Instr("lui", rd=2, imm=0x10),   # _start: sp = 0x10000
        Instr("jal", rd=1, imm=4),      # call func.f
        Instr("jal", rd=1, imm=0),      # func.f: calls itself
    ])
    compiled = SimpleNamespace(image=image,
                               symbols={"_start": 0, "func.f": 8},
                               stack_top=STACK_TOP)
    config = TimingConfig(lint=BinaryLintConfig(ram=(0, STACK_TOP)),
                          model=pipeline_cost_model(strict=False))
    report = analyze_timing(compiled, config)
    codes = {d.code for d in report.findings}
    assert "B2A202" in codes
    assert report.wcet_cycles is None
    assert report.stack_bound is None


def test_data_dependent_loop_not_inferred():
    """A loop governed by memory the analyzer cannot bound must be
    B2A201, never a guessed bound."""
    from repro.bedrock2.ast_ import (ELoad, EVar, Function, SSkip,
                                     SStackalloc, SWhile)

    program = {"main": Function("main", (), (), SStackalloc(
        "p", 8, SWhile(ELoad(4, EVar("p")), SSkip())))}
    compiled = compile_program(program, stack_top=STACK_TOP)
    report = analyze_timing(compiled, _fuzz_config())
    assert "B2A201" in {d.code for d in report.findings}
    assert report.wcet_cycles is None


# -- fuel-loop ground truth ---------------------------------------------------


def _is_subsequence(sub, full):
    it = iter(full)
    return all(any(x == y for y in it) for x in sub)


def test_inferred_bounds_match_generator_ground_truth():
    """The generator records the fuel literal of every loop it emits
    (`fuel_bounds`). The analyzer's inferred bounds must match that
    ground truth exactly for most functions, and always be an ordered
    subsequence of it (dead loops -- ``if (0)`` arms -- are pruned by
    semantic reachability, never mis-bounded)."""
    config = _fuzz_config()
    exact = total = 0
    for seed in range(20):
        program = generate_program(seed)
        truth = fuel_bounds(program)
        compiled = compile_program(program, stack_top=STACK_TOP)
        report = analyze_timing(compiled, config)
        assert report.findings == [], (seed, report.findings)
        assert report.wcet_cycles is not None, seed
        assert report.stack_bound == compiled.stack_bound, seed
        for fn_name, bounds in truth.items():
            timing = report.functions["func." + fn_name]
            inferred = [lp.bound for lp in
                        sorted(timing.loops, key=lambda lp: lp.ordinal)
                        if lp.source == INFERRED]
            total += 1
            if inferred == bounds:
                exact += 1
            else:
                assert _is_subsequence(inferred, bounds), \
                    (seed, fn_name, inferred, bounds)
    assert total > 0
    assert exact >= 2 * total // 3, "only %d/%d exact" % (exact, total)


def test_fuel_bounds_records_only_loop_functions():
    program = generate_program(0)
    truth = fuel_bounds(program)
    assert truth  # seed 0 has at least one fuel loop
    for name, bounds in truth.items():
        assert name in program
        assert bounds and all(b > 0 for b in bounds)


# -- dynamic soundness --------------------------------------------------------


def test_bounds_sound_against_measured_execution():
    """For a deterministic seed sample, the oracle's wcet layer proves a
    bound and every dynamic measurement stays under it: pipeline cycles
    under the static WCET, stack watermark under the static bound."""
    from repro.fuzz.oracle import run_differential

    checked = 0
    for seed in range(6):
        result = run_differential(generate_program(seed))
        assert result["status"] == "ok", (seed, result.get("divergence"))
        wcet = result["wcet"]
        assert wcet["measured_cycles"] <= wcet["static_cycles"], seed
        assert wcet["measured_stack"] <= wcet["stack_bound"], seed
        # Not vacuous: the bound is within a small factor of reality.
        assert wcet["static_cycles"] < 4 * wcet["measured_cycles"], seed
        checked += 1
    assert checked == 6


def test_stack_watermark_reference_and_fast_agree():
    """Both engines track the sp low-water mark identically, and the
    measured depth respects the static bound."""
    from repro.fuzz.oracle import _MEM_SIZE, SyntheticDevice
    from repro.bedrock2 import word
    from repro.riscv.machine import RiscvMachine

    config = _fuzz_config()
    for seed in (0, 7):
        compiled = compile_program(generate_program(seed),
                                   stack_top=STACK_TOP)
        report = analyze_timing(compiled, config)
        marks = []
        for fast in (False, True):
            machine = RiscvMachine.with_program(
                compiled.image, base=0, pc=0, mem_size=_MEM_SIZE,
                mmio_bus=SyntheticDevice(), fast=fast)
            machine.run(500_000)
            marks.append(machine.sp_min)
        ref_min, fast_min = marks
        assert ref_min == fast_min, seed
        assert ref_min < word.MASK  # the program did touch the stack
        depth = STACK_TOP - ref_min
        assert 0 < depth <= report.stack_bound, seed


def test_watermark_tracks_all_sp_writers():
    """The watermark sees every write to x2, whichever instruction
    produced it -- not just addi sp, sp, -frame."""
    from repro.riscv.machine import RiscvMachine

    for fast in (False, True):
        machine = RiscvMachine.with_program(b"", base=0, pc=0,
                                            mem_size=4096, fast=fast)
        machine.set_register(2, 4000)
        machine.set_register(2, 1024)
        machine.set_register(2, 2048)  # raising sp must not raise the mark
        assert machine.sp_min == 1024
