"""Adversarial-trace tests for `repro.kami.refinement.match_trace_prefix`.

The refinement checker's verdict is only as good as its trace
comparison; these tests pin its behavior on the tricky shapes --
reordered MMIO events, truncated prefixes, spurious trailing events --
that a buggy pipeline would actually produce.
"""

from repro.kami.refinement import RefinementResult, match_trace_prefix

LD = ("ld", 0x4000_0000, 0xABCD)
ST = ("st", 0x4000_0004, 7)
ST2 = ("st", 0x4000_0008, 9)


def test_equal_traces_match():
    result = match_trace_prefix([LD, ST], [LD, ST])
    assert result.ok
    assert isinstance(result, RefinementResult)
    assert bool(result) is True


def test_strict_prefix_matches():
    assert match_trace_prefix([LD], [LD, ST])
    assert match_trace_prefix([], [LD, ST])  # impl did nothing yet


def test_empty_spec_nonempty_impl_fails():
    result = match_trace_prefix([LD], [])
    assert not result
    assert "longer" in result.detail


def test_reordered_events_fail():
    result = match_trace_prefix([ST, LD], [LD, ST])
    assert not result
    assert "event 0" in result.detail


def test_reorder_later_in_trace_pinpoints_event():
    result = match_trace_prefix([LD, ST2, ST], [LD, ST, ST2])
    assert not result
    assert "event 1" in result.detail


def test_truncated_spec_fails():
    """Impl produced more events than the spec ever could."""
    result = match_trace_prefix([LD, ST, ST2], [LD, ST])
    assert not result
    assert "longer" in result.detail


def test_extra_trailing_impl_event_fails():
    result = match_trace_prefix([LD, ST], [LD])
    assert not result


def test_value_mismatch_fails():
    wrong = ("ld", LD[1], LD[2] ^ 1)
    result = match_trace_prefix([wrong], [LD])
    assert not result
    assert "event 0" in result.detail


def test_address_mismatch_fails():
    wrong = ("st", ST[1] + 4, ST[2])
    result = match_trace_prefix([LD, wrong], [LD, ST])
    assert not result


def test_result_carries_both_traces():
    result = match_trace_prefix([ST], [LD])
    assert result.impl_trace == [ST]
    assert result.spec_trace == [LD]
