"""The static analyzer: seeded-defect fixtures are each caught with
their documented diagnostic code, shipped programs lint clean (the CI
gate), the FlatImp face of the framework agrees, and the interval /
known-bits lattices are sound against the concrete word semantics."""

import random

import pytest

from repro.analysis import LintConfig, lint_program
from repro.analysis.dataflow import node_loc
from repro.analysis.domains import AbstractWord, CsPairingSpec, _binop
from repro.analysis.lint import lint_flat_function, lint_function, render_json
from repro.bedrock2 import word as W
from repro.bedrock2.builder import (
    block,
    func,
    if_,
    interact,
    lit,
    load4,
    set_,
    skip,
    stackalloc,
    store4,
    var,
    while_,
)
from repro.bedrock2.extspec import MMIOSpec
from repro.compiler.flatten import flatten_function, flatten_program
from repro.logic import terms as T
from repro.logic.intervals import KnownBits, bv_bits, bv_range, decide_bool
from repro.platform.bus import MMIO_RANGES
from repro.sw import constants as C
from repro.sw.doorlock import doorlock_program
from repro.sw.program import lightbulb_program

CONFIG = LintConfig(
    mmio_ranges=MMIO_RANGES,
    ext_spec=MMIOSpec(MMIO_RANGES),
    cs_pairing=CsPairingSpec(addr=C.SPI_CSMODE_ADDR,
                             acquire=C.CSMODE_HOLD,
                             release=C.CSMODE_AUTO),
)

GPIO_REG = C.GPIO_OUTPUT_VAL_ADDR


def codes(diags):
    return [d.code for d in diags]


# ---------------------------------------------------------------------------
# Seeded defects: each fixture must be caught with its documented code.


def test_use_before_def_caught():
    fn = func("f", [], ["r"], set_("r", var("x") + 1))
    diags = lint_function(fn, CONFIG)
    assert codes(diags) == ["B2A001"]
    assert "'x'" in diags[0].message


def test_unassigned_return_caught():
    fn = func("f", ["a"], ["r"], skip())
    diags = lint_function(fn, CONFIG)
    assert codes(diags) == ["B2A001"]
    assert "return" in diags[0].message


def test_assignment_on_one_branch_only_caught():
    fn = func("f", ["a"], ["r"],
              block(if_(var("a"), set_("x", 1)),
                    set_("r", var("x"))))
    assert "B2A001" in codes(lint_function(fn, CONFIG))


def test_dead_store_caught():
    fn = func("f", [], ["r"],
              block(set_("x", 1),       # overwritten before any read
                    set_("x", 2),
                    set_("r", var("x"))))
    diags = lint_function(fn, CONFIG)
    assert codes(diags) == ["B2A002"]
    assert "'x'" in diags[0].message


def test_unreachable_branch_caught():
    # a & 0 is provably zero by known-bits, so the then-branch is dead.
    fn = func("f", ["a"], ["r"],
              block(if_(var("a") & 0, set_("r", 1), set_("r", 2))))
    diags = lint_function(fn, CONFIG)
    assert codes(diags) == ["B2A003"]
    assert "then-branch" in diags[0].message


def test_unreachable_loop_body_caught():
    fn = func("f", ["a"], ["r"],
              block(set_("i", 0),
                    while_(var("i") & lit(0), set_("i", var("i") + 1)),
                    set_("r", 0)))
    diags = lint_function(fn, CONFIG)
    assert "B2A003" in codes(diags)


def test_while_true_is_not_flagged():
    # An intentionally-infinite server loop is idiomatic, not a defect.
    fn = func("f", [], [],
              while_(lit(1), interact([], "MMIOWRITE", lit(GPIO_REG),
                                      lit(0))))
    assert lint_function(fn, CONFIG) == []


def test_misaligned_store_caught():
    fn = func("f", ["v"], [], store4(lit(0x8000_0002), var("v")))
    diags = lint_function(fn, CONFIG)
    assert codes(diags) == ["B2A004"]


def test_misaligned_symbolic_address_caught():
    # p is stackalloc'd (4-aligned); p + 2 has bit 1 known set.
    fn = func("f", ["v"], [],
              stackalloc("p", 8, store4(var("p") + 2, var("v"))))
    diags = lint_function(fn, CONFIG)
    assert codes(diags) == ["B2A004"]


def test_mmio_range_store_caught():
    fn = func("f", ["v"], [], store4(lit(GPIO_REG), var("v")))
    diags = lint_function(fn, CONFIG)
    assert codes(diags) == ["B2A005"]


def test_mmio_range_load_caught():
    fn = func("f", [], ["r"], set_("r", load4(lit(C.SPI_RXDATA_ADDR))))
    diags = lint_function(fn, CONFIG)
    assert codes(diags) == ["B2A005"]


def test_unknown_action_caught():
    fn = func("f", [], [], interact([], "MMIOCLEAR", lit(GPIO_REG)))
    diags = lint_function(fn, CONFIG)
    assert codes(diags) == ["B2A006"]
    assert "MMIOCLEAR" in diags[0].message


def test_wrong_arity_caught():
    # MMIOWRITE takes (addr, value) and returns nothing.
    fn = func("f", [], [], interact([], "MMIOWRITE", lit(GPIO_REG)))
    diags = lint_function(fn, CONFIG)
    assert codes(diags) == ["B2A006"]
    assert "argument" in diags[0].message


def test_missing_bind_caught():
    # MMIOREAD returns one value; binding none loses it.
    fn = func("f", [], [], interact([], "MMIOREAD", lit(C.SPI_RXDATA_ADDR)))
    diags = lint_function(fn, CONFIG)
    assert codes(diags) == ["B2A006"]


def test_non_mmio_external_address_caught():
    fn = func("f", [], [], interact([], "MMIOWRITE", lit(0x1000), lit(0)))
    diags = lint_function(fn, CONFIG)
    assert codes(diags) == ["B2A006"]
    assert "outside" in diags[0].message


def test_cs_exit_while_held_caught():
    fn = func("f", [], [],
              interact([], "MMIOWRITE", lit(C.SPI_CSMODE_ADDR),
                       lit(C.CSMODE_HOLD)))
    diags = lint_function(fn, CONFIG)
    assert codes(diags) == ["B2A007"]
    assert "exit" in diags[0].message


def test_cs_double_acquire_caught():
    acquire = interact([], "MMIOWRITE", lit(C.SPI_CSMODE_ADDR),
                       lit(C.CSMODE_HOLD))
    release = interact([], "MMIOWRITE", lit(C.SPI_CSMODE_ADDR),
                       lit(C.CSMODE_AUTO))
    fn = func("f", ["a"], [],
              block(if_(var("a"), acquire, skip()),
                    interact([], "MMIOWRITE", lit(C.SPI_CSMODE_ADDR),
                             lit(C.CSMODE_HOLD)),
                    release))
    diags = lint_function(fn, CONFIG)
    assert codes(diags) == ["B2A007"]
    assert "already held" in diags[0].message


def test_paired_acquire_release_is_clean():
    fn = func("f", [], [],
              block(interact([], "MMIOWRITE", lit(C.SPI_CSMODE_ADDR),
                             lit(C.CSMODE_HOLD)),
                    interact([], "MMIOWRITE", lit(C.SPI_TXDATA_ADDR),
                             lit(0x55)),
                    interact([], "MMIOWRITE", lit(C.SPI_CSMODE_ADDR),
                             lit(C.CSMODE_AUTO))))
    assert lint_function(fn, CONFIG) == []


# ---------------------------------------------------------------------------
# Locations, suppression, rendering


def test_fixture_diagnostics_carry_source_locations():
    fn = func("f", [], ["r"], set_("r", var("x")))
    (diag,) = lint_function(fn, CONFIG)
    assert diag.loc is not None
    assert diag.loc[0].endswith("test_analysis.py")
    assert diag.render().startswith(diag.loc[0])


def test_builder_attaches_locations():
    stmt = set_("x", 1)
    loc = node_loc(stmt)
    assert loc is not None and loc[0].endswith("test_analysis.py")


def test_suppression_by_code_and_by_function():
    fn = func("f", [], ["r"], set_("r", var("x")))
    assert lint_function(fn, LintConfig(suppress=frozenset({"B2A001"}))) == []
    assert lint_function(
        fn, LintConfig(suppress=frozenset({("B2A001", "f")}))) == []
    assert lint_function(
        fn, LintConfig(suppress=frozenset({("B2A001", "g")}))) != []


def test_render_json_shape():
    import json

    fn = func("f", [], ["r"], set_("r", var("x")))
    doc = json.loads(render_json(lint_function(fn, CONFIG)))
    assert doc["count"] == 1
    (finding,) = doc["findings"]
    assert finding["code"] == "B2A001"
    assert finding["function"] == "f"
    assert finding["line"]


# ---------------------------------------------------------------------------
# Shipped programs lint clean (what CI enforces)


def test_lightbulb_program_lints_clean():
    assert lint_program(lightbulb_program(), CONFIG) == []


def test_doorlock_program_lints_clean():
    assert lint_program(doorlock_program(), CONFIG) == []


# ---------------------------------------------------------------------------
# FlatImp face of the framework


def test_flat_use_before_def_caught():
    fn = func("f", [], ["r"], set_("r", var("x") + 1))
    diags = lint_flat_function(flatten_function(fn))
    assert "B2A001" in codes(diags)


def test_flat_dead_store_caught():
    fn = func("f", [], ["r"],
              block(set_("x", 1), set_("x", 2), set_("r", var("x"))))
    diags = lint_flat_function(flatten_function(fn))
    assert "B2A002" in codes(diags)


@pytest.mark.parametrize("program", [lightbulb_program, doorlock_program])
def test_flattened_shipped_programs_lint_clean(program):
    # Flattening must not introduce use-before-def or dead temporaries.
    flat = flatten_program(program())
    for name in flat:
        assert lint_flat_function(flat[name]) == [], name


# ---------------------------------------------------------------------------
# AbstractWord soundness: every binop's abstract result contains the
# concrete result, for randomized inputs drawn from the abstract values.

_CONCRETE = {
    "add": W.add, "sub": W.sub, "mul": W.mul, "mulhuu": W.mulhuu,
    "divu": W.divu, "remu": W.remu, "and": W.and_, "or": W.or_,
    "xor": W.xor, "slu": W.sll, "sru": W.srl, "srs": W.sra,
    "ltu": W.ltu, "lts": W.lts, "eq": W.eq,
}


def _random_abstract(rng):
    """A random AbstractWord plus a concrete member of it."""
    kind = rng.randrange(3)
    if kind == 0:
        value = rng.randrange(1 << 32)
        return AbstractWord.const(value), value
    if kind == 1:
        lo = rng.randrange(1 << 32)
        hi = rng.randrange(lo, 1 << 32)
        value = rng.randrange(lo, hi + 1)
        return AbstractWord(lo, hi), value
    value = rng.randrange(1 << 32)
    mask = rng.randrange(1 << 32)
    return (AbstractWord(0, W.MASK, KnownBits(32, mask, value & mask)),
            value)


def test_abstract_binops_sound():
    rng = random.Random(1234)
    for _ in range(4000):
        op = rng.choice(sorted(_CONCRETE))
        a, x = _random_abstract(rng)
        b, y = _random_abstract(rng)
        if op in ("slu", "sru", "srs") and rng.random() < 0.8:
            amount = rng.randrange(32)
            b, y = AbstractWord.const(amount), amount
        result = _binop(op, a, b)
        concrete = _CONCRETE[op](x, y)
        assert result.lo <= concrete <= result.hi, (op, x, y)
        assert concrete & result.bits.mask == result.bits.value, (op, x, y)


def test_abstract_word_join_and_widen_contain_both():
    rng = random.Random(99)
    for _ in range(500):
        a, x = _random_abstract(rng)
        b, y = _random_abstract(rng)
        for combined in (a.join(b), a.widen(b)):
            for value in (x, y):
                assert combined.lo <= value <= combined.hi
                assert value & combined.bits.mask == combined.bits.value


# ---------------------------------------------------------------------------
# KnownBits / bv_range soundness over random term DAGs (exercises the
# sharpened and/or/xor/shift transfer functions in logic.intervals).

_TERM_OPS = [
    (T.add, W.add), (T.sub, W.sub), (T.mul, W.mul),
    (T.band, W.and_), (T.bor, W.or_), (T.bxor, W.xor),
]


def _random_term(rng, depth, concretes):
    """A random 32-bit term over vars x, y plus its concrete value."""
    if depth == 0 or rng.random() < 0.3:
        if rng.random() < 0.5:
            name = rng.choice(sorted(concretes))
            return T.var(name, 32), concretes[name]
        value = rng.randrange(1 << 32)
        return T.const(value, 32), value
    if rng.random() < 0.25:
        build, model = rng.choice([(T.shl, W.sll), (T.lshr, W.srl),
                                   (T.ashr, W.sra)])
        sub, x = _random_term(rng, depth - 1, concretes)
        amount = rng.randrange(32)
        return build(sub, T.const(amount, 32)), model(x, amount)
    build, model = rng.choice(_TERM_OPS)
    lhs, x = _random_term(rng, depth - 1, concretes)
    rhs, y = _random_term(rng, depth - 1, concretes)
    return build(lhs, rhs), model(x, y)


def test_bv_range_and_bits_sound_on_random_dags():
    rng = random.Random(4321)
    for _ in range(1500):
        x = rng.randrange(1 << 32)
        y = rng.randrange(1 << 32)
        lo = rng.randrange(x + 1)
        hi = rng.randrange(x, 1 << 32)
        env = {T.var("x", 32): (lo, hi)}
        term, concrete = _random_term(rng, 3, {"x": x, "y": y})
        rlo, rhi = bv_range(term, env=dict(env))
        assert rlo <= concrete <= rhi, (term, concrete)
        kb = bv_bits(term, env=dict(env))
        assert concrete & kb.mask == kb.value, (term, concrete)


def test_bv_range_uses_known_bits_for_masks():
    # x & 7 is within [0, 7] whatever x is -- the precision the dead-code
    # and alignment checks rely on.
    x = T.var("x", 32)
    assert bv_range(T.band(x, T.const(7, 32))) == (0, 7)
    assert bv_range(T.bor(T.band(x, T.const(0xF0, 32)),
                          T.const(1, 32)))[1] <= 0xF1
    assert bv_range(T.lshr(x, T.const(24, 32))) == (0, 0xFF)
    assert bv_range(T.shl(x, T.const(30, 32)))[0] == 0


def test_decide_bool_with_env():
    x = T.var("x", 32)
    env = {x: (0, 9)}
    assert decide_bool(T.ult(x, T.const(10, 32)), env=dict(env)) is True
    assert decide_bool(T.ult(T.const(20, 32), x), env=dict(env)) is False
    assert decide_bool(T.eq(T.band(x, T.const(1, 32)),
                            T.const(2, 32))) is False
    assert decide_bool(T.ult(x, T.const(5, 32)), env=dict(env)) is None


def test_knownbits_from_range_and_conflicts():
    kb = KnownBits.from_range(0x100, 0x10F, 32)
    assert kb.mask & 0xFFFFFF00 == 0xFFFFFF00
    assert kb.value & 0xFFFFFF00 == 0x100
    assert KnownBits.from_const(3, 32).conflicts(KnownBits.from_const(5, 32))
    assert not KnownBits.top(32).conflicts(KnownBits.from_const(5, 32))
