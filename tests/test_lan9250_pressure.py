"""LAN9250 under pressure: finite RX FIFOs, drop accounting, recovery.

The fleet simulator's storms only mean something if the NIC model loses
frames the way the real chip does -- these tests pin the capacity model
(data FIFO bytes + status slots), the ``dropped_frames`` accounting the
obs registry surfaces, and the RX_DUMP recovery path."""

from repro.platform.lan9250 import (
    MAC_CR,
    MAC_CR_RXEN,
    RX_CFG,
    RX_CFG_RX_DUMP,
    RX_DATA_FIFO,
    RX_FIFO_INF,
    RX_STATUS_FIFO,
    Lan9250,
)
from repro.platform.net import lightbulb_packet, oversize_packet
from tests.test_platform import spi_readword, spi_writeword


def _rx_on(lan: Lan9250) -> None:
    lan.mac_regs[MAC_CR] = MAC_CR_RXEN


def test_status_slot_exhaustion_tail_drops():
    lan = Lan9250(status_slots=2, fifo_bytes=1 << 20)
    _rx_on(lan)
    frame = lightbulb_packet(True)
    assert lan.inject_frame(frame)
    assert lan.inject_frame(frame)
    assert not lan.inject_frame(frame)
    assert lan.dropped_frames == 1
    assert len(lan.frames) == 2


def test_data_fifo_exhaustion_tail_drops():
    lan = Lan9250(status_slots=64, fifo_bytes=100)
    _rx_on(lan)
    frame = bytes(48)  # padded occupancy 48
    assert lan.inject_frame(frame)
    assert lan.inject_frame(frame)  # 96 bytes used
    assert not lan.inject_frame(frame)  # 144 > 100
    assert lan.dropped_frames == 1
    # Word padding counts against capacity: a 46-byte frame occupies 48.
    assert not lan.inject_frame(bytes(46))
    assert lan.inject_frame(bytes(4))
    assert lan.rx_used_bytes() == 100


def test_partially_drained_frame_still_occupies_the_fifo():
    lan = Lan9250(status_slots=64, fifo_bytes=128)
    _rx_on(lan)
    assert lan.inject_frame(bytes(64))
    used = lan.rx_used_bytes()
    # Pop the status word: the frame moves to the data-FIFO drain stage
    # but its words still occupy the FIFO until read out.
    spi_readword(lan, RX_STATUS_FIFO)
    assert lan.rx_used_bytes() == used
    assert not lan.inject_frame(bytes(80))  # 64 + 80 > 128
    # Draining the data words frees capacity.
    for _ in range(64 // 4):
        spi_readword(lan, RX_DATA_FIFO)
    assert lan.rx_used_bytes() == 0
    assert lan.inject_frame(bytes(80))


def test_back_to_back_frames_drain_in_order_with_correct_bytes():
    lan = Lan9250()
    _rx_on(lan)
    frames = [bytes([tag]) * (40 + 4 * tag) for tag in (1, 2, 3)]
    for frame in frames:
        assert lan.inject_frame(frame)
    info = spi_readword(lan, RX_FIFO_INF)
    assert (info >> 16) & 0xFF == 3
    for frame in frames:
        status = spi_readword(lan, RX_STATUS_FIFO)
        assert (status >> 16) & 0x3FFF == len(frame)
        words = []
        for _ in range((len(frame) + 3) // 4):
            words.append(spi_readword(lan, RX_DATA_FIFO))
        data = b"".join(w.to_bytes(4, "little") for w in words)
        assert data[:len(frame)] == frame


def test_rx_disabled_drops_are_accounted_and_observable():
    from repro import obs

    counter = obs.counter("platform.lan9250_dropped_frames")
    before = counter.value
    lan = Lan9250()
    assert not lan.rx_enabled
    assert not lan.inject_frame(lightbulb_packet(True))
    _rx_on(lan)
    assert lan.inject_frame(lightbulb_packet(True))
    assert lan.dropped_frames == 1
    assert counter.value == before + 1


def test_oversize_beyond_nic_limit_drops_within_limit_delivers():
    lan = Lan9250()
    _rx_on(lan)
    assert not lan.inject_frame(bytes(lan.max_frame + 1))
    assert lan.dropped_frames == 1
    # The paper's dangerous case: bigger than the driver's 1520-byte
    # buffer yet small enough for the NIC -- it *is* delivered.
    assert lan.inject_frame(oversize_packet(2000))


def test_rx_dump_recovery_clears_both_fifos_and_frees_capacity():
    lan = Lan9250(status_slots=4, fifo_bytes=256)
    _rx_on(lan)
    for _ in range(4):
        assert lan.inject_frame(bytes(60))
    assert not lan.inject_frame(bytes(60))
    spi_readword(lan, RX_STATUS_FIFO)  # arm the drain stage too
    spi_writeword(lan, RX_CFG, RX_CFG_RX_DUMP)
    assert lan.rx_used_bytes() == 0
    assert len(lan.frames) == 0
    assert spi_readword(lan, RX_FIFO_INF) == 0
    assert lan.inject_frame(bytes(60))


def test_capacity_defaults_absorb_a_burst_without_loss():
    lan = Lan9250()
    _rx_on(lan)
    frame = lightbulb_packet(True)  # 43 bytes, padded 44
    for _ in range(64):
        assert lan.inject_frame(frame)
    assert lan.dropped_frames == 0
    assert not lan.inject_frame(frame)  # slot 65 exceeds status FIFO
    assert lan.dropped_frames == 1
