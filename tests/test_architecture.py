"""Architectural conformance: the module structure must mirror paper
Figure 3's layering, and lower layers must not depend on higher ones --
the vertical modularity the paper insists on ("modify and optimize each
component individually ... without having to recheck the others")."""

import ast
import os

import pytest

SRC = os.path.join(os.path.dirname(__file__), "..", "src", "repro")

# Allowed dependencies between subpackages (edges of Figure 3, pointing
# from a component to the interfaces/substrates it may use).
#
# ``obs`` is not a Figure 3 component: it is the cross-cutting
# observability substrate (metrics + tracing), itself dependency-free,
# which every layer may report into without that constituting a
# layering edge.
CROSS_CUTTING = {"obs"}
ALLOWED = {
    "obs": set(),
    "logic": set(),
    "traces": set(),
    "bedrock2": {"logic"},
    "riscv": {"bedrock2"},          # shares the word-arithmetic module
    "compiler": {"bedrock2", "riscv"},
    "kami": {"bedrock2", "riscv"},
    "platform": {"bedrock2", "riscv", "traces"},
    # The static analyzer reads programs (AST + flat IR + encoded RV32IM
    # images, for the binary linter) and reuses the logic layer's
    # interval/known-bits lattices; nothing below it may import it back
    # (vcgen consumes the prescreener by injection). The ``kami`` edge
    # is the WCET cost model's drift check: the price list is calibrated
    # against the pipelined processor, and ``costmodel.py`` re-derives
    # the constants from the live module so a pipeline refactor cannot
    # silently invalidate the bounds (read-only, and kami never imports
    # analysis back).
    "analysis": {"bedrock2", "compiler", "kami", "logic", "riscv"},
    "sw": {"analysis", "bedrock2", "compiler", "logic", "platform",
           "traces", "riscv"},
    # The differential fuzzer drives every execution layer (and samples
    # vcgen obligations through the logic layer), so it sits beside
    # ``core`` near the top of the stack; only ``core`` (the end2end
    # stimulus) may import it back. It also runs the binary linter as a
    # static oracle layer, hence the ``analysis`` edge.
    "fuzz": {"analysis", "bedrock2", "compiler", "kami", "logic",
             "platform", "riscv"},
    "core": {"bedrock2", "compiler", "fuzz", "kami", "logic", "platform",
             "riscv", "sw", "traces"},
    # The fleet simulator instantiates the whole vertical stack per node
    # (compiled app on the fast engine over the platform bus, checked
    # against the trace specs) and shards itself over the logic layer's
    # dispatch pool; it reuses ``fuzz``'s RNG discipline for its seeded
    # fault/workload streams. Nothing imports it back.
    "net": {"compiler", "fuzz", "logic", "platform", "riscv", "sw",
            "traces"},
}

EXPECTED_PACKAGES = set(ALLOWED)


def _subpackage_imports(package: str):
    """The set of sibling repro.* subpackages imported anywhere in
    ``package`` (via relative imports, how this codebase imports)."""
    found = set()
    pkg_dir = os.path.join(SRC, package)
    for dirpath, _, files in os.walk(pkg_dir):
        for name in files:
            if not name.endswith(".py"):
                continue
            with open(os.path.join(dirpath, name), encoding="utf-8") as f:
                tree = ast.parse(f.read())
            for node in ast.walk(tree):
                if isinstance(node, ast.ImportFrom) and node.level == 2:
                    top = (node.module or "").split(".")[0]
                    if top in EXPECTED_PACKAGES and top != package:
                        found.add(top)
                elif isinstance(node, ast.ImportFrom) and node.level == 0 \
                        and node.module and node.module.startswith("repro."):
                    top = node.module.split(".")[1]
                    if top in EXPECTED_PACKAGES and top != package:
                        found.add(top)
    return found


def test_every_figure3_component_exists():
    packages = {entry for entry in os.listdir(SRC)
                if os.path.isdir(os.path.join(SRC, entry))
                and not entry.startswith("__")}
    assert packages == EXPECTED_PACKAGES


@pytest.mark.parametrize("package", sorted(EXPECTED_PACKAGES))
def test_layering_respected(package):
    imports = _subpackage_imports(package)
    illegal = imports - ALLOWED[package] - CROSS_CUTTING
    assert not illegal, ("%s depends on %s, violating Figure 3's layering"
                         % (package, sorted(illegal)))


def test_obs_substrate_is_dependency_free():
    # Everything may report into the observability layer, so it must not
    # import anything back -- otherwise it would be a hidden layering edge.
    assert _subpackage_imports("obs") == set()


def test_logic_layer_is_self_contained():
    # The decision substrate (our 'proof assistant kernel') depends on
    # nothing else in the system -- it is audit-minimal. Its only
    # permitted import is the dependency-free observability substrate.
    assert _subpackage_imports("logic") <= CROSS_CUTTING


def test_trace_spec_language_is_self_contained():
    # The spec language is trusted (Table 3): it too must stand alone.
    assert _subpackage_imports("traces") == set()


def test_key_interfaces_are_single_modules():
    """Figure 3's gray boxes each live in one place (no duplicated
    interface definitions to drift apart -- the integration-bug vector the
    paper targets)."""
    for path in (
        "bedrock2/extspec.py",       # semantics of external calls
        "bedrock2/vcgen.py",         # verification conditions
        "riscv/semantics.py",        # RISC-V as specified
        "kami/decexec.py",           # shared decode/execute
        "kami/refinement.py",        # processor refinement
        "traces/predicates.py",      # trace property language
    ):
        assert os.path.exists(os.path.join(SRC, path)), path


def test_drivers_do_not_touch_devices_directly():
    """The software may interact with hardware only through external calls
    (SInteract -> MMIO): no sw module may import the device models except
    for the shared address-map constants and the test/run harness glue in
    program.py."""
    for name in ("spi_driver.py", "lan9250_driver.py", "lightbulb.py",
                 "doorlock.py"):
        with open(os.path.join(SRC, "sw", name), encoding="utf-8") as f:
            tree = ast.parse(f.read())
        for node in ast.walk(tree):
            if isinstance(node, ast.ImportFrom):
                module = node.module or ""
                # platform.net is packet *construction* (workload data,
                # used only by host-side helpers), not a device model.
                if module.endswith("platform.net") or module == "net":
                    continue
                assert "platform" not in module, \
                    "%s imports device models directly" % name
