"""Unit tests for individual compiler phases: flattening shapes, register
allocation invariants, code-generation helpers, label resolution and
branch relaxation, stack accounting."""

import pytest

from repro.bedrock2.builder import (
    block, call, func, if_, lit, load4, set_, stackalloc, store4, var,
    while_,
)
from repro.compiler.codegen import (
    BranchTo, CompileError, FunctionCompiler, JumpTo, Label,
    MMIOExtCallCompiler, resolve_labels,
)
from repro.compiler.flatimp import (
    FFunction, FOp, FSetLit, FSetVar, FStackalloc, FWhile, stmt_vars,
)
from repro.compiler.flatten import flatten_function, flatten_program
from repro.compiler.pipeline import compile_program, compute_stack_bound
from repro.compiler.regalloc import (
    ALLOCATABLE, allocate_function, is_spill, reg_name, spill_slot,
)
from repro.riscv import insts as I


# -- flattening -----------------------------------------------------------------------

def test_flatten_expression_to_temps():
    fn = func("f", ("a", "b"), ("r",), set_("r", (var("a") + var("b")) * 2))
    flat = flatten_function(fn)
    ops = [s for s in flat.body if isinstance(s, FOp)]
    assert [o.op for o in ops] == ["add", "mul"]
    # Operands of the mul are a temp and a literal-holding temp.
    assert ops[1].lhs.startswith("$t")


def test_flatten_variable_to_variable_copy():
    fn = func("f", ("a",), ("r",), set_("r", var("a")))
    flat = flatten_function(fn)
    assert flat.body == (FSetVar("r", "a"),)


def test_flatten_self_assignment_dropped():
    fn = func("f", ("a",), ("a",), set_("a", var("a")))
    flat = flatten_function(fn)
    assert flat.body == ()


def test_flatten_while_recomputes_condition():
    fn = func("f", ("n",), ("n",),
              while_(var("n") < 10, set_("n", var("n") + 1)))
    flat = flatten_function(fn)
    loop = flat.body[0]
    assert isinstance(loop, FWhile)
    assert any(isinstance(s, FOp) and s.op == "ltu" for s in loop.cond_stmts)


def test_flatten_fresh_names_never_collide_with_source():
    func("f", ("$t0",), ("r",), set_("r", var("$t0") + 1))
    # "$" names cannot appear in source (builder takes them though); the
    # flattener's counter starts fresh per function, so ensure uniqueness:
    flat = flatten_function(func("g", ("a",), ("r",),
                                 set_("r", (var("a") + 1) + (var("a") + 2))))
    names = stmt_vars(flat.body)
    assert len([n for n in names if n.startswith("$t")]) == \
        len({n for n in names if n.startswith("$t")})


# -- register allocation ----------------------------------------------------------------

def test_allocate_params_get_registers_first():
    fn = FFunction("f", ("p", "q"), ("p",),
                   (FOp("r", "add", "p", "q"),))
    new_fn, alloc = allocate_function(fn)
    assert new_fn.params[0].startswith("x")
    assert new_fn.params[1].startswith("x")
    assert alloc.num_spills == 0


def test_allocate_spills_when_out_of_registers():
    many = tuple(FSetLit("v%d" % i, i) for i in range(len(ALLOCATABLE) + 5))
    fn = FFunction("f", (), ("v0",), many)
    new_fn, alloc = allocate_function(fn)
    assert alloc.num_spills == 5
    spilled = [s.dst for s in new_fn.body if is_spill(s.dst)]
    assert len(spilled) == 5
    assert spill_slot(spilled[0]) == 0


def test_reg_name_and_spill_helpers():
    assert reg_name(5) == "x5"
    assert is_spill("$spill3") and not is_spill("x7")
    assert spill_slot("$spill12") == 12


def test_too_many_args_rejected():
    from repro.compiler.regalloc import TooManyArguments

    fn = FFunction("f", tuple("p%d" % i for i in range(9)), (), ())
    with pytest.raises(TooManyArguments):
        allocate_function(fn)


# -- codegen helpers ---------------------------------------------------------------------

def fresh_fc(num_spills=0):
    return FunctionCompiler(FFunction("f", (), (), ()),
                            MMIOExtCallCompiler(), num_spills)


@pytest.mark.parametrize("value", [0, 1, -1 & 0xFFFFFFFF, 2047, 2048,
                                   0x800, 0x7FF, 0xFFFFF800, 0x80000800,
                                   0xDEADBEEF, 0x7FFFFFFF, 0x80000000])
def test_emit_li_all_ranges(value):
    from repro.riscv.machine import RiscvMachine
    from repro.riscv.encode import encode_program

    fc = fresh_fc()
    fc.emit_li(5, value)
    instrs = [i for i in fc.items]
    machine = RiscvMachine.with_program(encode_program(instrs),
                                        mem_size=1 << 10)
    for _ in instrs:
        machine.step()
    assert machine.get_register(5) == value & 0xFFFFFFFF


def test_emit_mv_elides_self_move():
    fc = fresh_fc()
    fc.emit_mv(5, 5)
    assert fc.items == []
    fc.emit_mv(5, 6)
    assert len(fc.items) == 1


def test_frame_layout_offsets_disjoint():
    body = (FStackalloc("x5", 16, (FStackalloc("x6", 8, ()),)),
            FStackalloc("x7", 8, ()))
    fc = FunctionCompiler(FFunction("f", (), (), body),
                          MMIOExtCallCompiler(), num_spills=2)
    offs = fc._alloca_offsets
    assert offs == [0, 16, 24]
    assert fc.spill_base == 32
    assert fc.saved_base == 32 + 8
    assert fc.frame_size % 16 == 0


# -- label resolution & branch relaxation ----------------------------------------------------

def test_resolve_simple_branch():
    items = [Label("top"), I.i_type("addi", 1, 1, 1),
             BranchTo("bne", 1, 0, "top")]
    instrs = resolve_labels(items)
    assert instrs[1] == I.branch("bne", 1, 0, -4)


def test_undefined_label_rejected():
    with pytest.raises(CompileError):
        resolve_labels([JumpTo(0, "nowhere")])


def test_duplicate_label_rejected():
    with pytest.raises(CompileError):
        resolve_labels([Label("a"), Label("a")])


def test_branch_relaxation_kicks_in():
    filler = [I.i_type("addi", 1, 1, 1)] * 1200  # > 4KB of code
    items = [BranchTo("beq", 1, 2, "far")] + filler + [Label("far")]
    instrs = resolve_labels(items)
    # The far branch became bne-over-jal.
    assert instrs[0].name == "bne"
    assert instrs[1].name == "jal"
    # Semantics: taken path must land after the filler.
    assert instrs[1].imm == 4 * (len(filler) + 1)


def test_branch_relaxation_preserves_behavior():
    # Compile a program whose if-arms exceed the branch range.
    big_then = block(*[set_("x", var("x") + 1) for _ in range(1500)])
    prog = {"main": func("main", ("c",), ("x",), block(
        set_("x", lit(0)),
        if_(var("c"), big_then, set_("x", lit(7)))))}
    from repro.compiler.pipeline import run_compiled

    compiled = compile_program(prog, entry="main")
    assert run_compiled(compiled, (1,))[0] == (1500,)
    assert run_compiled(compiled, (0,))[0] == (7,)


# -- stack accounting ----------------------------------------------------------------------

def test_stack_bound_sums_deepest_path():
    flat = flatten_program({
        "leaf": func("leaf", (), ("r",), set_("r", lit(1))),
        "mid": func("mid", (), ("r",), call(("r",), "leaf")),
        "main": func("main", (), ("r",), call(("r",), "mid")),
    })
    frames = {"leaf": 16, "mid": 32, "main": 48}
    assert compute_stack_bound(flat, frames, "main") == 96


def test_stack_bound_takes_max_over_callees():
    flat = flatten_program({
        "small": func("small", (), ("r",), set_("r", lit(1))),
        "big": func("big", (), ("r",), stackalloc("p", 256, block(
            store4(var("p"), lit(1)), set_("r", load4(var("p")))))),
        "main": func("main", (), ("r",), block(
            call(("a",), "small"), call(("r",), "big"))),
    })
    frames = {"small": 16, "big": 512, "main": 32}
    assert compute_stack_bound(flat, frames, "main") == 32 + 512


def test_undefined_callee_rejected():
    flat = flatten_program({
        "main": func("main", (), ("r",), call(("r",), "ghost"))})
    with pytest.raises(CompileError):
        compute_stack_bound(flat, {"main": 16}, "main")


def test_compiled_frames_fit_bound_at_runtime():
    # Runtime stack high-water mark must respect the static bound.
    prog = {
        "f3": func("f3", ("a",), ("r",), stackalloc("p", 64, block(
            store4(var("p"), var("a")), set_("r", load4(var("p")))))),
        "f2": func("f2", ("a",), ("r",), call(("r",), "f3", var("a") + 1)),
        "f1": func("f1", ("a",), ("r",), call(("r",), "f2", var("a") + 1)),
        "main": func("main", ("a",), ("r",), call(("r",), "f1", var("a"))),
    }
    from repro.compiler.pipeline import run_compiled

    compiled = compile_program(prog, entry="main", stack_top=1 << 16)

    class Spy:
        def is_mmio(self, addr):
            return False

    rets, machine = run_compiled(compiled, (5,), mem_size=1 << 16)
    assert rets == (7,)
    # The static bound is an upper bound on total frame usage.
    total_frames = sum(compiled.frame_sizes.values())
    assert compiled.stack_bound <= total_frames
