"""The parallel VC dispatcher (`repro.logic.dispatch`).

The hard requirements: ``--jobs N`` must be *observationally identical*
to ``--jobs 1`` (bit-identical reports, counterexamples, and proof-cache
contents), and one timed-out obligation must never abort the rest of a
batch -- it is surfaced as a per-obligation ``timeout`` status instead.
"""

import pytest

from repro import obs
from repro.logic import solver as S
from repro.logic import terms as T
from repro.logic.cache import ProofCache
from repro.logic.dispatch import Obligation, discharge_batch, parallel_call
from repro.sw.verify import verify_all, verify_doorlock

X = T.var("x")
Y = T.var("y")

# x*x == 7 is unsatisfiable mod 2^32 (7 is not a square mod 8), but the
# SAT tier needs to search the multiplier circuit to see it -- with a
# one-conflict budget the query reliably times out.
HARD_UNSAT_GOAL = T.ne(T.mul(X, X), T.const(7))


def _batch():
    return [
        Obligation(T.ult(X, T.const(16)), (T.ult(X, T.const(10)),),
                   context="provable"),
        Obligation(T.eq(Y, T.const(0)), (), context="refutable"),
        Obligation(HARD_UNSAT_GOAL, (), context="stuck", max_conflicts=1),
        Obligation(T.eq(T.add(X, T.const(0)), X), (), context="structural"),
    ]


def test_timeout_is_per_obligation_not_batch_fatal():
    results = discharge_batch(_batch(), jobs=1)
    assert [r.context for r in results] == \
        ["provable", "refutable", "stuck", "structural"]
    assert [r.status for r in results] == \
        ["proved", "refuted", "timeout", "proved"]
    # The refuted VC carries its countermodel; the timed-out one carries
    # nothing (it is unknown, not false).
    assert results[1].model is not None
    assert results[2].model is None


def test_parallel_batch_matches_sequential():
    sequential = discharge_batch(_batch(), jobs=1)
    parallel = discharge_batch(_batch(), jobs=2)
    assert [(r.context, r.status, r.model) for r in sequential] == \
        [(r.context, r.status, r.model) for r in parallel]


def test_solver_prove_distinguishes_timeout_from_refutation():
    with pytest.raises(S.SolverTimeout):
        S.prove(HARD_UNSAT_GOAL, max_conflicts=1)
    with pytest.raises(S.ProofFailure):
        S.prove(T.eq(Y, T.const(0)))


def test_vc_prove_records_timeout_in_report():
    from repro.bedrock2.builder import func, set_, var
    from repro.bedrock2.extspec import MMIOSpec
    from repro.bedrock2.vcgen import FunctionSpec, verify_function

    prog = {"f": func("f", ("x",), ("r",), set_("r", var("x")))}

    def post(vc, state, args, rets):
        vc.prove(state, T.eq(rets[0], args[0]), "post/easy")
        vc.prove(state, HARD_UNSAT_GOAL, "post/hard")

    report = verify_function(prog, "f", FunctionSpec(post=post),
                             MMIOSpec([]), max_conflicts=1)
    assert report.timeouts == ("post/hard",)
    assert not report.ok
    assert report.obligations == 1  # the easy one still went through
    assert "TIMED OUT" in str(report)

    with pytest.raises(S.SolverTimeout):
        verify_function(prog, "f", FunctionSpec(post=post), MMIOSpec([]),
                        max_conflicts=1, record_timeouts=False)


def test_jobs4_reports_bit_identical_to_jobs1():
    sequential = verify_all(jobs=1)
    parallel = verify_all(jobs=4)
    assert sequential.reports == parallel.reports
    assert str(sequential) == str(parallel)


def test_jobs_parallel_doorlock_and_counter_merge():
    queries = obs.counter("solver.queries")
    before = queries.value
    run = verify_doorlock(jobs=2)
    assert [r.function for r in run.reports] == \
        ["doorlock_init", "doorlock_loop"]
    # Worker solver activity was merged back into the parent registry.
    assert queries.value > before


def test_parallel_and_sequential_produce_identical_cache_files(tmp_path):
    d1 = str(tmp_path / "seq")
    d2 = str(tmp_path / "par")
    with ProofCache(d1) as cache:
        verify_all(jobs=1, cache=cache)
    with ProofCache(d2) as cache:
        verify_all(jobs=3, cache=cache)
    seq = sorted(open(d1 + "/proofs.jsonl").read().splitlines())
    par = sorted(open(d2 + "/proofs.jsonl").read().splitlines())
    assert seq == par


def test_parallel_workers_start_warm_from_parent_cache(tmp_path):
    from repro.logic.cache import HITS

    d = str(tmp_path / "cache")
    with ProofCache(d) as cache:
        verify_all(jobs=1, cache=cache)
    hits_before = HITS.value
    with ProofCache(d) as cache:
        verify_all(jobs=3, cache=cache)
        # Every worker query was served from the seeded entries (hit
        # counts are merged back); nothing new came back to absorb.
        assert cache.fresh_entries() == []
    assert HITS.value - hits_before > 0


def test_parallel_call_round_trips_results():
    results = parallel_call("repro.core.end2end:expected_bulb_history",
                            [{"accepted_frames": []},
                             {"accepted_frames": []}], jobs=2)
    assert results == [[], []]


def test_counterexample_identical_across_process_boundary():
    """The buggy-drain countermodel is the paper's falsifiable negative
    control; it must come out bit-identical whether the verification ran
    in-process or in worker processes."""
    from repro.sw.verify import verify_drain_buggy_fails

    local = verify_drain_buggy_fails()
    remote = parallel_call("repro.sw.verify:verify_drain_buggy_fails",
                           [{}, {}], jobs=2)
    for err in remote:
        assert err.model == local.model
        assert err.context == local.context


def test_histograms_survive_the_process_boundary():
    """Regression: `run_pool` used to ship only Counter values back, so
    worker-side histogram observations (e.g. per-obligation wall times)
    silently vanished under --jobs N. The observation *count* must match
    the sequential run exactly."""
    hist = obs.histogram("vcgen.obligation_seconds")
    obs.REGISTRY.reset()
    verify_doorlock(jobs=1)
    sequential = hist.count
    assert sequential > 0
    obs.REGISTRY.reset()
    verify_doorlock(jobs=4)
    assert hist.count == sequential
    assert hist.min is not None and hist.max is not None


def test_worker_spans_are_aggregated_into_parent_trace():
    """Worker-local spans come back through the pool and land in the
    parent tracer rebased to its clock, re-stamped with the worker pid."""
    import os

    obs.enable(trace=True)
    try:
        verify_doorlock(jobs=2)
        tr = obs.tracer()
        pids = {e["pid"] for e in tr.events}
        assert os.getpid() in pids          # parent dispatch spans
        assert pids - {os.getpid()}         # plus real worker pids
        worker_events = [e for e in tr.events
                         if e["pid"] != os.getpid()]
        assert any(e["ph"] == "B" and e["cat"] == "solver"
                   for e in worker_events)
        # Rebasing kept every worker timestamp inside the parent window.
        parent_ts = [e["ts"] for e in tr.events
                     if e["pid"] == os.getpid()]
        for event in worker_events:
            assert 0.0 <= event["ts"] <= max(parent_ts) + 1e6
    finally:
        obs.disable()
        obs.REGISTRY.reset()
