"""The verification ledger (`repro.obs.ledger`).

The contract under test: every VC obligation discharged by the stack
produces exactly one structured record, and the canonical JSONL export
is *byte-identical* between ``--jobs 1`` and ``--jobs 4`` -- the ledger
is evidence about the verification, so it must not depend on worker
scheduling, process ids, or wall clock.
"""

import json
import os

import pytest

from repro import obs
from repro.obs.ledger import Ledger, load_jsonl
from repro.sw.verify import verify_all, verify_doorlock


@pytest.fixture(autouse=True)
def _clean_obs():
    obs.disable()
    obs.REGISTRY.reset()
    yield
    obs.disable()
    obs.REGISTRY.reset()


# ------------------------------------------------------------- unit level


def test_ledger_append_mark_since():
    led = Ledger()
    led.append({"function": "f", "seq": 0})
    mark = led.mark()
    led.append({"function": "f", "seq": 1})
    assert mark == 1
    assert led.since(mark) == [{"function": "f", "seq": 1}]


def test_absorb_restamps_pid_without_mutating_source():
    led = Ledger()
    shipped = [{"function": "f", "seq": 0, "pid": 111}]
    led.absorb(shipped, pid=222)
    assert led.records[0]["pid"] == 222
    assert shipped[0]["pid"] == 111  # worker-side dict untouched


def test_canonical_lines_drop_volatile_keys_and_sort():
    led = Ledger()
    led.append({"wall_us": 42, "pid": 9, "function": "f", "seq": 0})
    (line,) = led.canonical_lines()
    assert json.loads(line) == {"function": "f", "seq": 0}
    (volatile,) = led.canonical_lines(volatile=True)
    assert json.loads(volatile)["wall_us"] == 42


def test_export_and_load_round_trip(tmp_path):
    led = Ledger()
    led.append({"function": "f", "seq": 0, "fp": "ab", "pid": 1,
                "wall_us": 3})
    path = str(tmp_path / "ledger.jsonl")
    assert led.export_jsonl(path) == 1
    assert load_jsonl(path) == [{"function": "f", "seq": 0, "fp": "ab"}]


# ------------------------------------------------------ record structure


REQUIRED_KEYS = {"function", "seq", "context", "loc", "fp", "status",
                 "tier", "cache", "prescreen", "effort", "wall_us", "pid"}


def test_doorlock_records_are_fully_populated():
    obs.enable()
    obs.enable_ledger()
    run = verify_doorlock(jobs=1)
    records = obs.ledger().records
    # One record per obligation, no more, no less.
    assert len(records) == run.total_obligations
    for record in records:
        assert set(record) == REQUIRED_KEYS
        assert record["function"] in ("doorlock_init", "doorlock_loop")
        assert record["status"] == "proved"
        assert record["tier"] in ("prescreen", "structural", "interval",
                                  "sat", "cache")
        # Content-addressed fingerprint: full sha256 hex.
        assert len(record["fp"]) == 64
        int(record["fp"], 16)
        assert set(record["effort"]) == {"decisions", "propagations",
                                         "conflicts", "cnf_vars",
                                         "cnf_clauses"}
        assert record["pid"] == os.getpid()
    # eDSL source stamping reached the ledger for at least some VCs.
    locs = [r["loc"] for r in records if r["loc"]]
    assert locs and all(loc.startswith("repro/") and ":" in loc
                        for loc in locs)
    # seq is dense per function, starting at 0.
    for fname in ("doorlock_init", "doorlock_loop"):
        seqs = [r["seq"] for r in records if r["function"] == fname]
        assert seqs == list(range(len(seqs)))


def test_prescreen_discharges_are_attributed():
    obs.enable()
    obs.enable_ledger()
    verify_doorlock(jobs=1)
    prescreened = [r for r in obs.ledger().records
                   if r["tier"] == "prescreen"]
    assert prescreened
    assert all(r["prescreen"] in ("const-goal", "abstract-interp")
               for r in prescreened)
    # Prescreened obligations never reached the solver.
    assert all(not any(r["effort"].values()) for r in prescreened)


# --------------------------------------------------------- determinism


def test_ledger_byte_identical_jobs_1_vs_4(tmp_path):
    """The acceptance criterion: same workload, sequential vs four
    worker processes, canonical exports compare equal byte-for-byte."""
    paths = {}
    for jobs in (1, 4):
        obs.disable()
        obs.REGISTRY.reset()
        obs.enable()
        obs.enable_ledger()
        run = verify_all(jobs=jobs)
        path = str(tmp_path / ("ledger_j%d.jsonl" % jobs))
        count = obs.export_ledger(path)
        assert count == run.total_obligations
        paths[jobs] = path
    seq = open(paths[1], "rb").read()
    par = open(paths[4], "rb").read()
    assert seq == par


def test_parallel_ledger_carries_worker_pids():
    obs.enable()
    obs.enable_ledger()
    verify_doorlock(jobs=2)
    pids = {r["pid"] for r in obs.ledger().records}
    assert pids and os.getpid() not in pids


def test_export_without_active_ledger_is_empty(tmp_path):
    path = str(tmp_path / "none.jsonl")
    assert obs.export_ledger(path) == 0
    assert not os.path.exists(path)
