"""The end-to-end theorem (paper §5.9) as tests: compiled binary at address
0, devices on the bus, every observed MMIO trace a prefix of goodHlTrace."""

import pytest

from repro.core.end2end import (
    expected_bulb_history, run_adversarial, run_end_to_end,
)
from repro.platform.net import (
    lightbulb_packet, non_udp_packet, oversize_packet, truncated_packet,
    wrong_ethertype_packet,
)


def test_idle_system_satisfies_spec():
    result = run_end_to_end(max_units=60_000)
    assert result.ok, result.detail
    assert result.bulb_history == []


def test_on_off_commands_actuate():
    result = run_end_to_end(frames=[(5, lightbulb_packet(True)),
                                    (15, lightbulb_packet(False)),
                                    (25, lightbulb_packet(True))],
                            max_units=300_000)
    assert result.ok, result.detail
    assert result.bulb_history == [1, 0, 1]


def test_malformed_frames_never_actuate():
    frames = [(5, truncated_packet()), (12, wrong_ethertype_packet()),
              (19, non_udp_packet()), (26, oversize_packet(2000))]
    result = run_end_to_end(frames=frames, max_units=300_000)
    assert result.ok, result.detail
    assert result.bulb_history == []


def test_bulb_follows_valid_commands_among_garbage():
    frames = [(5, truncated_packet()),
              (12, lightbulb_packet(True)),
              (25, non_udp_packet()),
              (35, lightbulb_packet(False)),
              (48, oversize_packet(2000))]
    result = run_end_to_end(frames=frames, max_units=400_000)
    assert result.ok, result.detail
    assert result.bulb_history == [1, 0]


@pytest.mark.parametrize("seed", [1, 2, 3, 4])
def test_adversarial_fuzzing_isa(seed):
    """The security reading of the theorem: pseudorandom malicious packet
    streams cannot drive the system outside its specification."""
    result = run_adversarial(seed, n_frames=8, max_units=500_000)
    assert result.ok, result.detail


def test_end_to_end_on_kami_spec_processor():
    result = run_end_to_end(frames=[(5, lightbulb_packet(True))],
                            processor="kami-spec", max_units=150_000,
                            checkpoint_every=10_000)
    assert result.ok, result.detail
    assert result.bulb_history == [1]


def test_end_to_end_on_pipelined_processor():
    """The theorem's actual statement is about p4mm, the pipelined Kami
    processor with I$ and BTB."""
    result = run_end_to_end(frames=[(8, lightbulb_packet(True))],
                            processor="p4mm", max_units=250_000,
                            checkpoint_every=10_000)
    assert result.ok, result.detail
    assert result.bulb_history == [1]


def test_trace_grows_and_stays_in_spec():
    result = run_end_to_end(frames=[(5, lightbulb_packet(True))],
                            max_units=150_000)
    assert result.ok
    assert len(result.trace) > 500
    assert result.checkpoints > 10


def test_expected_history_model():
    frames = [lightbulb_packet(True), truncated_packet(),
              lightbulb_packet(True), lightbulb_packet(False)]
    assert expected_bulb_history(frames) == [1, 0]
    assert expected_bulb_history([truncated_packet()]) == []
    assert expected_bulb_history([lightbulb_packet(False)]) == [0]


def test_buggy_driver_violates_at_machine_level():
    """With the prototype's driver, an oversize frame overruns the buffer in
    machine memory. The overrun stomps the stack frame, and the processor
    then executes whatever follows -- in our setup the corruption reaches
    state the spec checker observes (the run deviates from goodHlTrace or
    faults on the XAddrs discipline). Either way the theorem's guarantee is
    demonstrably *absent* without the length check."""
    from repro.riscv.machine import RiscvUB

    try:
        result = run_end_to_end(frames=[(5, oversize_packet(2000, on=True))],
                                max_units=400_000, buggy_driver=True)
        # If no fault: the spec must have been violated, or -- if the
        # overrun corrupted only silent state -- the bulb may have been
        # switched without a valid command.
        assert (not result.ok) or result.bulb_history != [], \
            "buffer overflow had no observable effect; exploit demo broken"
    except RiscvUB:
        pass  # stack overran into code: caught by the XAddrs discipline
