"""The content-addressed proof cache (`repro.logic.cache`).

Covers the correctness properties the incremental story rests on:
fingerprints are alpha-renaming-invariant and stable across runs;
mutating one function invalidates exactly its own entries (the program
logic's modularity, now exploited for incremental re-verification);
corrupt or poisoned cache data is detected and ignored, never trusted.
"""

import json
import os

from repro.bedrock2.builder import func, lit, set_, var
from repro.bedrock2.extspec import MMIOSpec
from repro.bedrock2.vcgen import FunctionSpec, verify_function
from repro.logic import solver as S
from repro.logic import terms as T
from repro.logic.cache import (
    FORMAT_VERSION, CORRUPT, HITS, MISSES, POISONED, ProofCache, fingerprint,
)

MMIO = MMIOSpec([(0x10012000, 0x10013000)])


# -- fingerprinting -----------------------------------------------------------


def test_fingerprint_is_deterministic():
    formula = T.and_(T.ult(T.var("a"), T.const(10)),
                     T.eq(T.add(T.var("a"), T.var("b")), T.const(3)))
    d1, _ = fingerprint(formula)
    d2, _ = fingerprint(formula)
    assert d1 == d2
    assert len(d1) == 64


def test_fingerprint_alpha_renaming_invariant():
    def formula(x, y):
        return T.and_(T.ult(T.var(x), T.var(y)),
                      T.eq(T.add(T.var(x), T.const(1)), T.var(y)))

    d1, map1 = fingerprint(formula("x", "y"))
    d2, map2 = fingerprint(formula("p!7", "q!33"))
    assert d1 == d2
    # The variable maps line up positionally.
    assert sorted(map1.values()) == sorted(map2.values())


def test_fingerprint_distinguishes_different_formulas():
    d1, _ = fingerprint(T.ult(T.var("x"), T.const(10)))
    d2, _ = fingerprint(T.ult(T.var("x"), T.const(11)))
    d3, _ = fingerprint(T.ule(T.var("x"), T.const(10)))
    assert len({d1, d2, d3}) == 3


def test_terms_pickle_through_interning():
    import pickle

    t = T.and_(T.eq(T.add(T.var("x"), T.const(1)), T.var("y")),
               T.ult(T.var("y"), T.const(100)))
    clone = pickle.loads(pickle.dumps(t))
    assert clone is t  # hash-consing survives the round trip


# -- store round trip ---------------------------------------------------------


def test_cache_round_trip_on_disk(tmp_path):
    d = str(tmp_path / "cache")
    with ProofCache(d) as cache:
        cache.store("a" * 64, True, None)
        cache.store("b" * 64, False, {"v0": 7, "v1": True})
    with ProofCache(d) as reloaded:
        assert len(reloaded) == 2
        assert reloaded.lookup("a" * 64).valid is True
        entry = reloaded.lookup("b" * 64)
        assert entry.valid is False
        assert entry.model == {"v0": 7, "v1": True}


def test_solver_hits_cache_for_renamed_query(tmp_path):
    cache = ProofCache(str(tmp_path / "cache"))
    with S.cached(cache):
        before = HITS.value
        r1 = S.check_valid(T.ult(T.var("a!1"), T.const(16)),
                           [T.ult(T.var("a!1"), T.const(10))])
        # Same VC modulo renaming: must be served from cache.
        r2 = S.check_valid(T.ult(T.var("z!9"), T.const(16)),
                           [T.ult(T.var("z!9"), T.const(10))])
    assert r1.valid and r2.valid
    assert HITS.value == before + 1


def test_cached_countermodel_replayed_with_original_names(tmp_path):
    cache = ProofCache(str(tmp_path / "cache"))
    goal = T.eq(T.var("n"), T.const(0))
    with S.cached(cache):
        miss = S.check_valid(goal)
        hit = S.check_valid(T.eq(T.var("m"), T.const(0)))
    assert not miss.valid and not hit.valid
    assert "m" in hit.model
    assert T.evaluate(T.not_(T.eq(T.var("m"), T.const(0))), hit.model)


# -- corruption and poisoning -------------------------------------------------


def test_corrupt_lines_are_skipped(tmp_path):
    d = tmp_path / "cache"
    d.mkdir()
    path = d / "proofs.jsonl"
    header = json.dumps({"format": "repro-proof-cache",
                         "version": FORMAT_VERSION})
    good = json.dumps({"k": "c" * 64, "valid": True})
    path.write_text("\n".join([
        header,
        "this is not json {{{",
        json.dumps({"k": "too-short", "valid": True}),
        json.dumps({"k": "d" * 64, "valid": "yes"}),
        json.dumps({"k": "e" * 64, "valid": False}),  # invalid needs a model
        json.dumps([1, 2, 3]),
        good,
    ]) + "\n")
    before = CORRUPT.value
    cache = ProofCache(str(d))
    assert len(cache) == 1
    assert cache.lookup("c" * 64) is not None
    assert CORRUPT.value - before == 5


def test_bad_header_discards_whole_file(tmp_path):
    d = tmp_path / "cache"
    d.mkdir()
    path = d / "proofs.jsonl"
    path.write_text(json.dumps({"k": "a" * 64, "valid": True}) + "\n")
    before = CORRUPT.value
    cache = ProofCache(str(d))
    assert len(cache) == 0
    assert CORRUPT.value > before
    # The next store rewrites the file with a proper header.
    cache.store("b" * 64, True, None)
    cache.close()
    lines = path.read_text().splitlines()
    assert json.loads(lines[0])["format"] == "repro-proof-cache"
    assert len(ProofCache(str(d))) == 1


def test_poisoned_countermodel_detected_and_ignored(tmp_path):
    d = str(tmp_path / "cache")
    goal = T.ult(T.var("x"), T.const(16))
    hyp = T.ult(T.var("x"), T.const(10))
    with ProofCache(d) as cache:
        with S.cached(cache):
            assert S.check_valid(goal, [hyp]).valid
    # Poison the stored verdict: claim the VC is falsifiable with a
    # "countermodel" that does not falsify it.
    path = os.path.join(d, "proofs.jsonl")
    lines = open(path).read().splitlines()
    records = [json.loads(line) for line in lines[1:]]
    poisoned = []
    for record in records:
        record["valid"] = False
        record["model"] = {}
        poisoned.append(json.dumps(record))
    open(path, "w").write("\n".join([lines[0]] + poisoned) + "\n")

    before_poisoned = POISONED.value
    with ProofCache(d) as cache:
        with S.cached(cache):
            result = S.check_valid(goal, [hyp])
    # The lie was caught by re-validation; the solver re-decided the VC.
    assert result.valid
    assert POISONED.value > before_poisoned


# -- modular invalidation -----------------------------------------------------


def _small_program(k: int):
    """Two independent functions; ``g``'s body depends on ``k``."""
    return {
        "f": func("f", ("x",), ("r",), set_("r", (var("x") + 1) - 1)),
        "g": func("g", ("x",), ("r",), set_("r", var("x") + lit(k))),
    }


def _post_identity(vc, state, args, rets):
    vc.prove(state, T.eq(rets[0], args[0]), "post")


def _post_offset(k):
    # ult (not eq) so the goal does not fold to TRUE at interning time:
    # the solver must actually be queried for the property to exercise
    # the cache.
    def post(vc, state, args, rets):
        vc.prove(state, T.ult(T.sub(rets[0], args[0]), T.const(k + 1)),
                 "post")

    return post


def _verify_both(cache, k):
    with S.cached(cache):
        verify_function(_small_program(k), "f",
                        FunctionSpec(post=_post_identity), MMIO)
        verify_function(_small_program(k), "g",
                        FunctionSpec(post=_post_offset(k)), MMIO)


def test_mutating_one_function_invalidates_only_its_entries(tmp_path):
    d = str(tmp_path / "cache")
    with ProofCache(d) as cache:
        _verify_both(cache, k=5)

    # Unchanged program: every query hits.
    hits, misses = HITS.value, MISSES.value
    with ProofCache(d) as cache:
        _verify_both(cache, k=5)
    assert MISSES.value == misses
    assert HITS.value > hits

    # Mutate only g (k=5 -> k=6): f still hits everything; only g's own
    # obligations miss -- the modularity dividend.
    hits, misses = HITS.value, MISSES.value
    with ProofCache(d) as cache:
        with S.cached(cache):
            verify_function(_small_program(6), "f",
                            FunctionSpec(post=_post_identity), MMIO)
            f_misses = MISSES.value - misses
            verify_function(_small_program(6), "g",
                            FunctionSpec(post=_post_offset(6)), MMIO)
            g_misses = MISSES.value - misses - f_misses
    assert f_misses == 0, "unchanged function f re-queried the solver"
    assert g_misses > 0, "mutated function g should re-verify"


# -- the headline incremental property ----------------------------------------


def test_warm_verify_all_skips_at_least_90_percent(tmp_path):
    from repro.logic.solver import _QUERIES
    from repro.sw.verify import verify_all

    d = str(tmp_path / "cache")
    with ProofCache(d) as cache:
        cold = verify_all(cache=cache)
    queries, hits = _QUERIES.value, HITS.value
    with ProofCache(d) as cache:
        warm = verify_all(cache=cache)
    warm_queries = _QUERIES.value - queries
    warm_hits = HITS.value - hits
    assert [r.function for r in cold.reports] == \
        [r.function for r in warm.reports]
    assert cold.total_obligations == warm.total_obligations
    assert warm_queries > 0
    assert warm_hits >= 0.9 * warm_queries, \
        "warm re-verification should skip >=90%% of solver queries " \
        "(got %d/%d)" % (warm_hits, warm_queries)
