"""Unit tests for the term language: constructors, folding, evaluation."""

import pytest

from repro.logic import terms as T


def test_const_masks_to_width():
    assert T.const(0x1_FFFF_FFFF).value == 0xFFFF_FFFF
    assert T.const(-1, 8).value == 0xFF


def test_hash_consing_identity():
    a = T.add(T.var("x"), T.const(1))
    b = T.add(T.var("x"), T.const(1))
    assert a is b


def test_constant_folding_binops():
    assert T.add(T.const(3), T.const(4)).value == 7
    assert T.sub(T.const(3), T.const(4)).value == 0xFFFF_FFFF
    assert T.mul(T.const(0x10000), T.const(0x10000)).value == 0
    assert T.band(T.const(0xF0), T.const(0x3C)).value == 0x30
    assert T.bor(T.const(0xF0), T.const(0x0F)).value == 0xFF
    assert T.bxor(T.const(0xFF), T.const(0x0F)).value == 0xF0
    assert T.shl(T.const(1), T.const(4)).value == 16
    assert T.lshr(T.const(0x80000000), T.const(31)).value == 1
    assert T.ashr(T.const(0x80000000), T.const(31)).value == 0xFFFFFFFF


def test_shift_amount_mod_width():
    assert T.shl(T.const(1), T.const(32)).value == 1
    assert T.shl(T.const(1), T.const(33)).value == 2


def test_identity_simplifications():
    x = T.var("x")
    assert T.add(x, T.const(0)) is x
    assert T.add(T.const(0), x) is x
    assert T.mul(x, T.const(1)) is x
    assert T.mul(x, T.const(0)).value == 0
    assert T.band(x, T.const(0)).value == 0
    assert T.band(x, T.const(0xFFFFFFFF)) is x
    assert T.bor(x, T.const(0)) is x
    assert T.bxor(x, x).value == 0
    assert T.sub(x, x).value == 0


def test_division_by_zero_riscv_convention():
    assert T.bv_binop("udiv", T.const(7), T.const(0)).value == 0xFFFFFFFF
    assert T.bv_binop("urem", T.const(7), T.const(0)).value == 7
    assert T.bv_binop("sdiv", T.const(7), T.const(0)).value == 0xFFFFFFFF
    minint = T.const(0x80000000)
    assert T.bv_binop("sdiv", minint, T.const(0xFFFFFFFF)).value == 0x80000000


def test_signed_helpers():
    assert T.to_signed(0xFFFFFFFF, 32) == -1
    assert T.to_signed(0x7FFFFFFF, 32) == 0x7FFFFFFF
    assert T.from_signed(-1, 32) == 0xFFFFFFFF


def test_extract_concat_roundtrip():
    w = T.const(0xAABBCCDD)
    assert T.extract(w, 7, 0).value == 0xDD
    assert T.extract(w, 31, 24).value == 0xAA
    lo = T.extract(w, 15, 0)
    hi = T.extract(w, 31, 16)
    assert T.concat(hi, lo).value == 0xAABBCCDD


def test_extract_of_extract_fuses():
    x = T.var("x")
    e = T.extract(T.extract(x, 23, 8), 7, 0)
    assert e.op == "extract"
    assert e.args[0] is x
    assert e.attr == (15, 8)


def test_extract_of_concat_selects_side():
    hi = T.var("h", 16)
    lo = T.var("l", 16)
    c = T.concat(hi, lo)
    assert T.extract(c, 15, 0) is lo
    assert T.extract(c, 31, 16) is hi


def test_zext_sext():
    assert T.zext(T.const(0xFF, 8), 32).value == 0xFF
    assert T.sext(T.const(0xFF, 8), 32).value == 0xFFFFFFFF
    assert T.sext(T.const(0x7F, 8), 32).value == 0x7F


def test_boolean_connectives():
    p = T.bool_var("p")
    assert T.and_(p, T.TRUE) is p
    assert T.and_(p, T.FALSE) is T.FALSE
    assert T.or_(p, T.FALSE) is p
    assert T.or_(p, T.TRUE) is T.TRUE
    assert T.not_(T.not_(p)) is p
    assert T.and_(p, T.not_(p)) is T.FALSE
    assert T.or_(p, T.not_(p)) is T.TRUE


def test_comparisons_fold():
    assert T.ult(T.const(1), T.const(2)) is T.TRUE
    assert T.ult(T.const(2), T.const(1)) is T.FALSE
    assert T.slt(T.const(0xFFFFFFFF), T.const(0)) is T.TRUE
    assert T.eq(T.const(5), T.const(5)) is T.TRUE
    x = T.var("x")
    assert T.eq(x, x) is T.TRUE
    assert T.ult(x, T.const(0)) is T.FALSE


def test_ite_simplifies():
    x, y = T.var("x"), T.var("y")
    p = T.bool_var("p")
    assert T.ite(T.TRUE, x, y) is x
    assert T.ite(T.FALSE, x, y) is y
    assert T.ite(p, x, x) is x
    assert T.ite(p, T.TRUE, T.FALSE) is p


def test_evaluate_on_model():
    x, y = T.var("x"), T.var("y")
    expr = T.add(T.mul(x, T.const(3)), y)
    assert T.evaluate(expr, {"x": 5, "y": 2}) == 17
    cmp_ = T.ult(x, y)
    assert T.evaluate(cmp_, {"x": 1, "y": 2}) is True


def test_evaluate_missing_variable_raises():
    with pytest.raises(KeyError):
        T.evaluate(T.var("zz"), {})


def test_free_vars():
    x, y = T.var("x"), T.var("y")
    expr = T.and_(T.ult(x, y), T.eq(x, T.const(3)))
    names = {name for name, _ in T.free_vars(expr)}
    assert names == {"x", "y"}


def test_bool_to_word():
    assert T.bool_to_word(T.TRUE).value == 1
    assert T.bool_to_word(T.FALSE).value == 0
