"""VC prescreening: the abstract-interpretation prescreener discharges a
substantial share of the proof obligations without any solver query, and
-- the soundness contract -- verification verdicts are bit-identical
with and without it."""

import pytest

from repro import obs
from repro.analysis.prescreen import Prescreener, mine_path
from repro.bedrock2.builder import block, func, interact, lit, set_, var
from repro.bedrock2.extspec import MMIOSpec
from repro.bedrock2.vcgen import FunctionSpec, verify_function
from repro.logic import terms as T
from repro.sw.verify import (
    DOORLOCK_TASKS,
    LIGHTBULB_TASKS,
    run_verify_task,
)

PRESCREENED = obs.counter("analysis.obligations_prescreened")
MISSES = obs.counter("analysis.prescreen_misses")


def report_signature(report):
    return (report.function, report.ok, report.paths, report.obligations,
            tuple(report.timeouts))


# ---------------------------------------------------------------------------
# Path-condition mining


def test_mine_path_equalities_and_bounds():
    x = T.var("x", 32)
    n = T.var("n", 32)
    env, bits = mine_path((T.eq(x, T.const(8, 32)),
                           T.ult(n, T.const(100, 32))))
    assert env[x] == (8, 8)
    assert env[n] == (0, 99)
    assert bits[x].value == 8


def test_mine_path_mask_equality_gives_bits():
    buf = T.var("buf", 32)
    env, bits = mine_path((T.eq(T.band(buf, T.const(3, 32)),
                                T.const(0, 32)),))
    assert bits[buf].mask & 3 == 3
    assert bits[buf].value & 3 == 0


def test_mine_path_transitive_bounds():
    # i < n together with not(380 < n) must bound i itself -- the fact
    # pattern the drain loop's in-bounds obligations hinge on.
    i = T.var("i", 32)
    n = T.var("n", 32)
    env, _ = mine_path((T.ult(i, n),
                        T.not_(T.ult(T.const(380, 32), n))))
    assert env[n] == (1, 380)  # i < n with i >= 0 already forces n >= 1
    assert env[i] == (0, 379)


def test_mine_path_negated_bound():
    x = T.var("x", 32)
    env, _ = mine_path((T.not_(T.ult(T.const(10, 32), x)),))
    assert env[x] == (0, 10)


def test_prescreener_proves_only_consequences():
    x = T.var("x", 32)

    class StateStub:
        path = (T.ult(x, T.const(10, 32)),)

    hook = Prescreener()
    assert hook(StateStub(), T.ult(x, T.const(100, 32))) is True
    assert hook(StateStub(), T.ult(x, T.const(5, 32))) is False
    assert hook(StateStub(), T.TRUE) is True
    assert hook.discharged == 2 and hook.attempts == 3


# ---------------------------------------------------------------------------
# Whole-workload equivalence and coverage


ALL_TASKS = LIGHTBULB_TASKS + DOORLOCK_TASKS


@pytest.mark.parametrize("task", ALL_TASKS)
def test_verdicts_identical_with_and_without_prescreen(task):
    with_hook = run_verify_task(task, prescreen=True)
    without = run_verify_task(task, prescreen=False)
    assert report_signature(with_hook) == report_signature(without)


def test_prescreen_discharges_at_least_ten_percent():
    PRESCREENED.reset()
    MISSES.reset()
    total = 0
    for task in ALL_TASKS:
        total += run_verify_task(task, prescreen=True).obligations
    discharged = PRESCREENED.value
    assert discharged + MISSES.value >= total
    assert total > 0
    assert discharged >= total / 10, (
        "prescreen discharged %d of %d obligations" % (discharged, total))


def test_prescreen_counter_untouched_when_disabled():
    PRESCREENED.reset()
    run_verify_task(ALL_TASKS[0], prescreen=False)
    assert PRESCREENED.value == 0


# ---------------------------------------------------------------------------
# The hook composes with verify_function directly


def test_verify_function_accepts_prescreen_hook():
    gpio = 0x1001_200C
    fn = func("f", ["v"], [],
              block(set_("x", var("v") & 0xFF),
                    interact([], "MMIOWRITE", lit(gpio), var("x"))))
    spec = FunctionSpec()
    hook = Prescreener()
    report = verify_function({"f": fn}, "f", spec,
                             MMIOSpec([(0x1001_2000, 0x1001_3000)]),
                             prescreen=hook)
    assert report.ok
    assert hook.discharged >= 1
