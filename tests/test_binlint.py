"""Tests for the binary-level abstract interpreter (`repro.analysis.binlint`).

Three layers of evidence:

* *precision*: the shipped apps and generated programs lint completely
  clean, including translation validation;
* *recall*: hand-written bad binaries trip every one of the seven
  abstract-interpretation defect classes, and the two runtime-silent
  catalog mutations are killed by the binlint oracle layer alone;
* *soundness*: on concrete executions, the machine state at every pc is
  inside the abstract state the fixpoint computed for that pc.
"""

import glob
import json
import os

import pytest

from repro.analysis.binlint import (
    BinaryLintConfig,
    analyze_image,
    lint_binary_program,
    lint_compiled,
    lint_image,
    state_contains,
    translation_validate,
)
from repro.analysis.cfg import call_graph, recover_cfg
from repro.bedrock2.ast_ import ELit, EOp, Function, SStore
from repro.compiler import compile_program
from repro.fuzz.astjson import program_from_json
from repro.fuzz.generator import GenConfig, PROFILES, SCRATCH_BASE, \
    generate_program
from repro.fuzz.mutate import mutation_context
from repro.fuzz.oracle import (
    DEV_BASE,
    DEV_SIZE,
    LAYERS,
    SyntheticDevice,
    run_fuzz_seed,
)
from repro.platform.bus import MMIO_RANGES
from repro.riscv import insts as I
from repro.riscv.encode import encode_program
from repro.riscv.machine import RiscvMachine

STACK_TOP = 1 << 16
CORPUS = sorted(glob.glob(
    os.path.join(os.path.dirname(__file__), "..", "fuzz-corpus", "*.json")))


def _config(**kwargs):
    return BinaryLintConfig.for_platform(STACK_TOP, MMIO_RANGES, **kwargs)


def _lint(instrs, symbols=None):
    image = encode_program(instrs)
    return lint_image(image, symbols or {"func.f": 0}, _config())


def _codes(findings):
    return {d.code for d in findings}


RET = I.jalr(0, 1, 0)


# -- recall: hand-written bad binaries, one per defect class -----------------


def test_b2a101_branch_target_outside_image():
    findings = _lint([I.branch("beq", 0, 0, 64), RET])
    assert _codes(findings) == {"B2A101"}
    assert "outside XAddrs" in findings[0].message


def test_b2a101_indirect_jump():
    findings = _lint([I.jalr(0, 10, 0)])
    assert _codes(findings) == {"B2A101"}
    assert "indirect" in findings[0].message


def test_b2a101_misaligned_return():
    findings = _lint([I.jalr(0, 1, 1)])
    assert _codes(findings) == {"B2A101"}
    assert "misaligned" in findings[0].message


def test_b2a102_unclassifiable_access():
    # a0 + a1: two unrelated pointer bases, abstractly anything.
    findings = _lint([I.r_type("add", 29, 10, 11), I.load("lw", 30, 29, 0), RET])
    assert _codes(findings) == {"B2A102"}


def test_b2a103_mmio_misaligned():
    findings = _lint([
        I.u_type("lui", 29, 0x10012),
        I.i_type("addi", 29, 29, 2),
        I.load("lw", 30, 29, 0),
        RET,
    ])
    assert _codes(findings) == {"B2A103"}
    assert "word-aligned" in findings[0].message


def test_b2a103_mmio_not_word_sized():
    findings = _lint([
        I.u_type("lui", 29, 0x10012),
        I.store("sb", 29, 10, 0),
        RET,
    ])
    assert _codes(findings) == {"B2A103"}
    assert "not word-sized" in findings[0].message


def test_b2a103_outside_platform_map():
    findings = _lint([
        I.u_type("lui", 29, 0x20000),
        I.load("lw", 30, 29, 0),
        RET,
    ])
    assert _codes(findings) == {"B2A103"}
    assert "outside the platform address map" in findings[0].message


def test_b2a104_sp_imbalanced_at_return():
    findings = _lint([I.i_type("addi", 2, 2, -16), RET])
    assert _codes(findings) == {"B2A104"}
    assert "entry sp-16" in findings[0].message


def test_b2a105_store_below_sp():
    findings = _lint([
        I.i_type("addi", 2, 2, -16),
        I.store("sw", 2, 10, -4),
        I.i_type("addi", 2, 2, 16),
        RET,
    ])
    assert _codes(findings) == {"B2A105"}
    assert "below the stack pointer" in findings[0].message


def test_b2a106_callee_saved_clobbered():
    findings = _lint([I.i_type("addi", 18, 0, 5), RET])
    assert _codes(findings) == {"B2A106"}
    assert "s2" in findings[0].message


def test_b2a107_read_of_never_written_register():
    findings = _lint([I.r_type("add", 29, 3, 0), RET])
    assert _codes(findings) == {"B2A107"}
    assert "gp" in findings[0].message


def test_prologue_epilogue_pattern_is_clean():
    # The code generator's standard frame discipline must not trip any
    # check: save ra + one callee-saved reg, clobber it, restore, return.
    findings = _lint([
        I.i_type("addi", 2, 2, -16),
        I.store("sw", 2, 1, 12),
        I.store("sw", 2, 18, 8),
        I.i_type("addi", 18, 0, 7),
        I.load("lw", 18, 2, 8),
        I.load("lw", 1, 2, 12),
        I.i_type("addi", 2, 2, 16),
        RET,
    ])
    assert findings == []


def test_suppressions():
    instrs = [I.i_type("addi", 18, 0, 5), RET]
    image = encode_program(instrs)
    assert lint_image(image, {"func.f": 0},
                      _config(suppress=frozenset({"B2A106"}))) == []
    assert lint_image(image, {"func.f": 0},
                      _config(suppress=frozenset({("B2A106", "func.f")}))) \
        == []


def test_for_platform_cross_checks_extspec():
    class BadSpec:
        ranges = ((0x5000_0000, 0x5000_0040),)

    with pytest.raises(ValueError):
        BinaryLintConfig.for_platform(STACK_TOP, MMIO_RANGES,
                                      ext_spec=BadSpec())
    with pytest.raises(ValueError):
        BinaryLintConfig.for_platform(STACK_TOP, ((0x100, 0x200),))


# -- CFG recovery ------------------------------------------------------------


def test_cfg_recovery_of_lightbulb():
    from repro.sw.program import compiled_lightbulb

    compiled = compiled_lightbulb(stack_top=STACK_TOP)
    cfg = recover_cfg(compiled.image, compiled.symbols)
    assert "_start" in cfg.functions
    assert any(name.startswith("func.") for name in cfg.functions)
    assert not cfg.invalid  # every emitted word decodes
    for fn in cfg.functions.values():
        for block in fn.blocks.values():
            for succ in block.succs:
                assert succ in fn.blocks  # edges land on leaders
    graph = call_graph(cfg)
    assert "func.main" in graph["_start"] or \
        any("main" in c for c in graph["_start"])


def test_call_graph_edges_of_doorlock():
    from repro.sw.doorlock import doorlock_program

    program = doorlock_program()
    compiled = compile_program(program, entry="main", stack_top=STACK_TOP)
    graph = call_graph(recover_cfg(compiled.image, compiled.symbols))
    # Every callee named in an edge is a real function.
    for callees in graph.values():
        for callee in callees:
            assert callee in graph


# -- precision: shipped apps and generated programs lint clean ---------------


def test_lightbulb_binary_lints_clean():
    from repro.sw.program import compiled_lightbulb, lightbulb_program

    compiled = compiled_lightbulb(stack_top=STACK_TOP)
    assert lint_binary_program(lightbulb_program(), compiled,
                               _config()) == []


def test_doorlock_binary_lints_clean():
    from repro.sw.doorlock import doorlock_program

    program = doorlock_program()
    compiled = compile_program(program, entry="main", stack_top=STACK_TOP)
    assert lint_binary_program(program, compiled, _config()) == []


def _fuzz_config():
    return BinaryLintConfig.for_platform(
        STACK_TOP, ((DEV_BASE, DEV_BASE + DEV_SIZE),))


@pytest.mark.parametrize("seed", range(8))
def test_generated_programs_lint_clean(seed):
    program = generate_program(seed)
    compiled = compile_program(program, stack_top=STACK_TOP)
    assert lint_binary_program(program, compiled, _fuzz_config()) == []


def test_small_profile_lints_clean():
    config = GenConfig.from_dict(PROFILES["small"].to_dict())
    for seed in range(4):
        program = generate_program(seed, config)
        compiled = compile_program(program, stack_top=STACK_TOP)
        assert lint_binary_program(program, compiled, _fuzz_config()) == []


# -- translation validation ---------------------------------------------------


def _tv_program():
    body = SStore(4, ELit(SCRATCH_BASE), EOp("sub", ELit(10), ELit(3)))
    return {"main": Function("main", (), (), body)}


def test_translation_validation_clean_on_honest_compiler():
    program = _tv_program()
    compiled = compile_program(program, stack_top=STACK_TOP)
    assert translation_validate(program, compiled, _fuzz_config()) == []


def test_translation_validation_catches_wrong_lowering():
    program = _tv_program()
    with mutation_context("codegen-sub-as-add"):
        compiled = compile_program(program, stack_top=STACK_TOP)
    findings = translation_validate(program, compiled, _fuzz_config())
    assert _codes(findings) == {"B2A108"}
    assert "incompatible" in findings[0].message


def test_translation_validation_catches_dropped_store():
    program = _tv_program()
    with mutation_context("flatten-drop-store"):
        compiled = compile_program(program, stack_top=STACK_TOP)
    findings = translation_validate(program, compiled, _fuzz_config())
    assert _codes(findings) == {"B2A108"}
    assert "count mismatch" in findings[0].message


# -- the two runtime-silent mutations: binlint is the only killer ------------


def test_jalr_mutation_visible_only_statically():
    program = generate_program(0)
    with mutation_context("encode-jalr-imm-plus1"):
        compiled = compile_program(program, stack_top=STACK_TOP)
    findings = lint_compiled(compiled, _fuzz_config())
    assert "B2A101" in _codes(findings)


def test_callee_save_mutation_visible_only_statically():
    program = generate_program(0)
    with mutation_context("regalloc-drop-callee-save"):
        compiled = compile_program(program, stack_top=STACK_TOP)
    findings = lint_compiled(compiled, _fuzz_config())
    assert "B2A106" in _codes(findings)


@pytest.mark.parametrize("mutation", ["encode-jalr-imm-plus1",
                                      "regalloc-drop-callee-save"])
def test_silent_mutations_killed_by_binlint_layer(mutation):
    result = run_fuzz_seed(0, mutation=mutation)
    assert result["status"] == "divergence", result
    assert result["divergence"]["layer"] == "binlint", result
    without = tuple(layer for layer in LAYERS if layer != "binlint")
    result = run_fuzz_seed(0, mutation=mutation, layers=without)
    assert result["status"] == "ok", result


# -- soundness: abstract states contain every concrete execution -------------


def _check_soundness(program, context=""):
    """Single-step the ISA machine; at every pc, the fixpoint's abstract
    in-state must contain the concrete register file and spilled slots."""
    compiled = compile_program(program, stack_top=STACK_TOP)
    analyses = analyze_image(compiled.image, compiled.symbols,
                             _fuzz_config())
    cfg = recover_cfg(compiled.image, compiled.symbols)
    machine = RiscvMachine.with_program(
        compiled.image, base=0, pc=0, mem_size=STACK_TOP,
        mmio_bus=SyntheticDevice(), fast=False)

    def snapshot():
        return [machine.get_register(r) for r in range(32)]

    def mem_word(addr):
        if all((addr + i) in machine.mem for i in range(4)):
            return int.from_bytes(
                bytes(machine.mem[addr + i] for i in range(4)), "little")
        return None

    shadow = [("_start", snapshot())]
    steps = checked = 0
    while machine.pc != compiled.halt_pc:
        steps += 1
        assert steps < 200_000, "no halt while checking soundness" + context
        pc = machine.pc
        fname, entry_regs = shadow[-1]
        analysis = analyses.get(fname)
        if analysis is not None and analysis.function.contains(pc):
            state = analysis.states.get(pc)
            assert state is not None, \
                "executed pc 0x%x abstractly unreachable in %s%s" \
                % (pc, fname, context)
            err = state_contains(state, snapshot(), entry_regs, mem_word)
            assert err is None, \
                "pc 0x%x in %s: %s%s" % (pc, fname, err, context)
            checked += 1
        instr = machine.step()
        if instr.name == "jal" and instr.rd == 1:
            shadow.append((cfg.entries.get(machine.pc, "?"), snapshot()))
        elif instr.name == "jalr" and instr.rd == 0 and instr.rs1 == 1 \
                and len(shadow) > 1:
            shadow.pop()
    assert checked > 0
    return checked


@pytest.mark.parametrize("seed", range(6))
def test_soundness_on_generated_programs(seed):
    _check_soundness(generate_program(seed), " (seed %d)" % seed)


def test_soundness_on_small_profile():
    config = GenConfig.from_dict(PROFILES["small"].to_dict())
    for seed in range(3):
        _check_soundness(generate_program(seed, config),
                         " (small seed %d)" % seed)


@pytest.mark.parametrize("path", CORPUS, ids=os.path.basename)
def test_soundness_on_corpus_reproducers(path):
    """The shrunk corpus programs re-execute inside their abstractions
    (compiled honestly -- the recorded mutation stays off)."""
    with open(path) as fh:
        doc = json.load(fh)
    _check_soundness(program_from_json(doc["program"]),
                     " (%s)" % os.path.basename(path))


# -- CLI ---------------------------------------------------------------------


def test_cli_lint_binary_clean():
    import contextlib
    import io

    from repro.__main__ import main

    out = io.StringIO()
    with contextlib.redirect_stdout(out):
        code = main(["lint", "--binary", "--format", "json"])
    assert code == 0
    doc = json.loads(out.getvalue())
    assert doc == {"findings": [], "count": 0}
